/**
 * @file
 * Streaming trace-conformance throughput (ISSUE 10).
 *
 * The streaming checker exists so million-event executions — far past
 * what the exhaustive axiomatic checker can enumerate — can still be
 * validated against the PTX axioms. This bench is the artifact behind
 * the two acceptance numbers: a synthetic 1M-event trace checks at
 * >= 100k events/sec in Release, and the live window the checker keeps
 * stays orders of magnitude below the event count (peak live writes
 * vs. events processed), so memory is bounded by the window, not the
 * trace.
 *
 * The synthetic workload round-robins T threads over per-thread
 * location sets (store, commit, load-back), which keeps every event
 * conformant by construction while filling all T windows at once —
 * the retirement path, not the violation path, is what 1M clean events
 * exercises.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "conform/checker.hh"
#include "conform/trace.hh"
#include "litmus/types.hh"
#include "obs/obs.hh"
#include "obs/report.hh"

using namespace mixedproxy;
using namespace mixedproxy::bench;

namespace {

/**
 * Build a conformant synthetic trace with ~@p events events: @p
 * threads threads round-robin over @p locsPerThread private locations,
 * each turn emitting st + commit + ld-back (all relaxed/generic, GPU
 * scope). Private locations mean no cross-thread rf/coherence edges,
 * so the trace is conformant for every interleaving the round-robin
 * produces; the per-location commit streams still grow without bound,
 * which is exactly what forces the checker's window retirement.
 */
std::string
syntheticTrace(std::size_t events, std::size_t threads = 4,
               std::size_t locsPerThread = 2)
{
    std::ostringstream out;
    conform::TraceWriter writer(out);

    conform::TraceHeader header;
    header.test = "synthetic_" + std::to_string(events);
    const std::size_t nLocs = threads * locsPerThread;
    for (std::size_t t = 0; t < threads; t++)
        header.threads.push_back(
            {"t" + std::to_string(t), static_cast<int>(t), 0});
    for (std::size_t l = 0; l < nLocs; l++)
        header.locations.push_back({"x" + std::to_string(l), 0});
    writer.header(header);

    std::vector<std::uint64_t> value(nLocs, 0);
    litmus::Outcome outcome;
    std::size_t emitted = 0;
    for (std::size_t turn = 0; emitted + 3 <= events; turn++) {
        const std::size_t t = turn % threads;
        const std::size_t l =
            t * locsPerThread + (turn / threads) % locsPerThread;
        const std::uint64_t v = ++value[l];
        const std::uint64_t uid = writer.store(
            t, l, v, litmus::Semantics::Weak, litmus::Scope::Gpu,
            litmus::ProxyKind::Generic);
        writer.commit(uid);
        writer.load(t, l, v, uid, litmus::Semantics::Weak,
                    litmus::Scope::Gpu, litmus::ProxyKind::Generic,
                    "");
        emitted += 3;
    }
    for (std::size_t l = 0; l < nLocs; l++)
        outcome.memory[header.locations[l].name] = value[l];
    writer.finish(outcome);
    return out.str();
}

struct Run
{
    double ms = 0.0;
    conform::ConformStats stats;
};

/** Check @p trace once; wall ms plus the checker's own stats. */
Run
checkOnce(const std::string &trace, std::size_t window = 1024)
{
    conform::ConformOptions opts;
    opts.window = window;
    std::istringstream in(trace);
    auto begin = std::chrono::steady_clock::now();
    conform::ConformReport report = conform::checkTrace(in, opts);
    auto end = std::chrono::steady_clock::now();
    if (!report.conformant())
        std::fprintf(stderr, "BUG: synthetic trace nonconformant:\n%s",
                     report.summary().c_str());
    benchmark::DoNotOptimize(report.stats.events);
    return {std::chrono::duration<double, std::milli>(end - begin)
                .count(),
            report.stats};
}

/** Best-of-3 wall time (the machine is noisy; min is the estimator). */
Run
checkBest(const std::string &trace, std::size_t window = 1024)
{
    Run best = checkOnce(trace, window);
    for (int i = 0; i < 2; i++) {
        Run run = checkOnce(trace, window);
        if (run.ms < best.ms)
            best = run;
    }
    return best;
}

double
eventsPerSec(const Run &run)
{
    return run.ms > 0.0
               ? static_cast<double>(run.stats.events) * 1e3 / run.ms
               : 0.0;
}

void
printThroughputTable()
{
    banner("Streaming conformance: events/sec and window residency",
           "million-event traces check in window-bounded memory at "
           ">= 100k events/sec");

    std::printf("%-12s %-10s %-12s %-14s %-14s\n", "events", "wall ms",
                "events/sec", "peak window", "retired");
    rule();
    for (std::size_t events :
         {std::size_t{10'000}, std::size_t{100'000},
          std::size_t{1'000'000}}) {
        const std::string trace = syntheticTrace(events);
        Run run = checkBest(trace);
        std::printf("%-12zu %-10.1f %-12.0f %-14zu %-14llu\n", events,
                    run.ms, eventsPerSec(run), run.stats.peakWindow,
                    static_cast<unsigned long long>(
                        run.stats.retiredWrites));
    }
    rule();
    std::printf("\n");
}

void
printWindowTable()
{
    banner("Window capacity vs. memory: 1M events at varying windows",
           "peak live writes track the configured window, not the "
           "trace length");

    // Single runs: this table is about residency (peak/retired, which
    // are deterministic), not timing, and per-event cost grows with
    // the live window, so repeated large-window sweeps get expensive.
    const std::string trace = syntheticTrace(1'000'000);
    std::printf("%-10s %-10s %-14s %-14s\n", "window", "wall ms",
                "peak window", "retired");
    rule();
    for (std::size_t window : {std::size_t{64}, std::size_t{256},
                               std::size_t{1024}}) {
        Run run = checkOnce(trace, window);
        std::printf("%-10zu %-10.1f %-14zu %-14llu\n", window, run.ms,
                    run.stats.peakWindow,
                    static_cast<unsigned long long>(
                        run.stats.retiredWrites));
    }
    rule();
    std::printf("\n");
}

/**
 * Record the headline gauges into bench/results/ (perfcmp tracks them
 * across PRs). The obs session also captures the checker's own
 * conform.* counters and the conform.window.peak gauge.
 */
void
writeStatsJson()
{
#ifdef MIXEDPROXY_BENCH_RESULTS_DIR
    const std::filesystem::path dir = MIXEDPROXY_BENCH_RESULTS_DIR;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n",
                     dir.string().c_str(), ec.message().c_str());
        return;
    }

    obs::Session session;
    session.enable();
    {
        obs::ScopedSession bind(&session);
        const std::string trace = syntheticTrace(1'000'000);
        Run run = checkBest(trace);
        obs::gauge("trace_conform.events_per_sec", eventsPerSec(run));
        obs::gauge("trace_conform.wall_ms.1m_events", run.ms);
        obs::gauge("trace_conform.peak_window",
                   static_cast<double>(run.stats.peakWindow));
    }
    session.disable();

    std::map<std::string, std::string> meta;
    meta["bench"] = "trace_conform";
    meta["workload"] = "synthetic_1m_events_4t_window1024_bestof3";
    const std::filesystem::path path = dir / "trace_conform.stats.json";
    std::ofstream out(path);
    if (out) {
        out << obs::statsJson(session.metrics, meta);
        std::printf("wrote %s\n\n", path.string().c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n",
                     path.string().c_str());
    }
#endif
}

void
BM_CheckSyntheticTrace(benchmark::State &state)
{
    const std::string trace =
        syntheticTrace(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        conform::ConformOptions opts;
        std::istringstream in(trace);
        benchmark::DoNotOptimize(
            conform::checkTrace(in, opts).stats.events);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckSyntheticTrace)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void
BM_SyntheticTraceWrite(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            syntheticTrace(static_cast<std::size_t>(state.range(0)))
                .size());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticTraceWrite)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printThroughputTable();
    printWindowTable();
    writeStatsJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
