/**
 * @file
 * Experiment E8 (paper §4.2): the "just make everything coherent"
 * alternative.
 *
 * Reproduces the trade-off the paper describes: physically tagged,
 * invalidation-coherent caches restore correctness with no proxy
 * fences, but pay address translation before every cache lookup and
 * invalidation traffic on every store — costs that led NVIDIA to keep
 * the non-coherent design and add proxies instead.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "litmus/expr.hh"
#include "litmus/registry.hh"
#include "microarch/simulator.hh"

using namespace mixedproxy;
using namespace mixedproxy::bench;

namespace {

double
fractionSatisfying(const microarch::SimResult &result,
                   const std::string &condition)
{
    auto expr = litmus::parseCondition(condition);
    std::size_t hits = 0;
    std::size_t total = 0;
    for (const auto &[outcome, count] : result.histogram) {
        total += count;
        if (expr->evalBool(outcome))
            hits += count;
    }
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(hits) /
                            static_cast<double>(total);
}

void
printTable()
{
    banner("E8 / Section 4.2 ablation: just make everything coherent",
           "coherence restores correctness without fences but adds "
           "translation latency and invalidation traffic everywhere");

    struct Workload
    {
        const char *name;
        const char *stale; ///< condition marking a stale observation
    };
    const Workload workloads[] = {
        {"fig4_warmed_stale_hit", "t0.r1 == 0"},
        {"fig4_const_alias_nofence", "t0.r1 == 0"},
        {"fig8e_warmed_wrong_side", "t1.r5 == 1 && t1.r3 == 0"},
        {"fig9_message_passing", "t1.r1 == 1 && t1.r2 == 0"},
    };

    std::printf("%-28s %-9s %-8s %-9s %-8s %-8s\n", "workload", "mode",
                "stale%", "latency", "inval", "xlate");
    rule();
    for (const auto &workload : workloads) {
        const auto &test = litmus::testByName(workload.name);
        for (auto mode : {microarch::CoherenceMode::Proxy,
                          microarch::CoherenceMode::FullyCoherent}) {
            microarch::SimOptions opts;
            opts.iterations = 2000;
            opts.mode = mode;
            auto result = microarch::Simulator(opts).run(test);
            std::printf(
                "%-28s %-9s %7.1f %9.0f %8llu %8llu\n", workload.name,
                mode == microarch::CoherenceMode::Proxy ? "proxy"
                                                        : "coherent",
                fractionSatisfying(result, workload.stale),
                result.meanLatency(),
                static_cast<unsigned long long>(
                    result.stats.invalidatedLines),
                static_cast<unsigned long long>(
                    result.stats.translations));
        }
    }
    rule();
    std::printf("(latency = mean simulated cycles per schedule; inval/"
                "xlate are totals over\n 2000 schedules. The coherent "
                "design's stale%% is always 0; its costs are not.)\n\n");
}

void
BM_ProxyMode(benchmark::State &state)
{
    const auto &test = litmus::testByName("fig9_message_passing");
    microarch::SimOptions opts;
    opts.iterations = 1;
    microarch::Simulator sim(opts);
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.runOnce(test, seed++));
}
BENCHMARK(BM_ProxyMode);

void
BM_CoherentMode(benchmark::State &state)
{
    const auto &test = litmus::testByName("fig9_message_passing");
    microarch::SimOptions opts;
    opts.iterations = 1;
    opts.mode = microarch::CoherenceMode::FullyCoherent;
    microarch::Simulator sim(opts);
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.runOnce(test, seed++));
}
BENCHMARK(BM_CoherentMode);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
