/**
 * @file
 * End-to-end cache behavior through the CLI front end: repeated inputs
 * hit within one run (the ISSUE 6 replay acceptance), --cache-dir makes
 * a second process warm with byte-identical output, and --no-cache
 * disables memoization.
 */

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/json.hh"
#include "nvlitmus/driver.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy;

struct RunResult
{
    int code = 0;
    std::string out;
    std::string err;
};

RunResult
run(const std::vector<std::string> &args)
{
    std::ostringstream out;
    std::ostringstream err;
    RunResult result;
    result.code = nvlitmus::runCli(args, out, err);
    result.out = out.str();
    result.err = err.str();
    return result;
}

struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("mp_cli_cache_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    static inline std::atomic<int> counter{0};
};

/** Counter value from a --stats-json report. */
std::uint64_t
counterFrom(const std::filesystem::path &statsPath,
            const std::string &name)
{
    std::ifstream in(statsPath);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto doc = engine::json::parse(buffer.str());
    if (!doc)
        return 0;
    const engine::json::Value *counters = doc->find("counters");
    return counters ? counters->uintOr(name, 0) : 0;
}

/** Write a small renamed-message-passing litmus file. */
std::filesystem::path
writeVariant(const TempDir &dir, const std::string &stem,
             const std::string &thread0, const std::string &thread1,
             const std::string &data, const std::string &flag,
             const std::string &reg0, const std::string &reg1)
{
    std::filesystem::path file = dir.path / (stem + ".litmus");
    std::ofstream out(file);
    out << "name: " << stem << "\n"
        << "thread " << thread0 << " cta 0 gpu 0:\n"
        << "  st.global.u32 [" << data << "], 1\n"
        << "  st.release.gpu.u32 [" << flag << "], 1\n"
        << "thread " << thread1 << " cta 1 gpu 0:\n"
        << "  ld.acquire.gpu.u32 " << reg0 << ", [" << flag << "]\n"
        << "  ld.global.u32 " << reg1 << ", [" << data << "]\n";
    if (data == flag) {
        // With data and flag aliased the MP-shaped require is violated
        // (r0=1, r1=0 is admitted); assert something that holds instead.
        // Assertions are not part of the cache key, so the choice does
        // not perturb the hit/miss accounting this suite measures.
        out << "require: " << thread1 << "." << reg0 << " != 2\n";
    } else {
        out << "require: !(" << thread1 << "." << reg0 << " == 1) || "
            << thread1 << "." << reg1 << " == 1\n";
    }
    return file;
}

TEST(CliCache, DuplicateHeavyBatchMeetsTheHitRateFloor)
{
    TempDir dir;
    // Six inputs, two isomorphism classes — a >=50%-duplicated corpus
    // modulo renaming (the acceptance shape for the replay criterion).
    auto a1 = writeVariant(dir, "mp_a1", "t0", "t1", "x", "f", "r0", "r1");
    auto a2 = writeVariant(dir, "mp_a2", "alpha", "beta", "data", "flag",
                           "r7", "r9");
    auto b1 = writeVariant(dir, "mp_b1", "t0", "t1", "x", "x", "r0", "r1");
    auto b2 = writeVariant(dir, "mp_b2", "u0", "u1", "loc", "loc", "r4",
                           "r5");
    std::filesystem::path stats = dir.path / "stats.json";

    RunResult result = run({"--stats-json", stats.string(),
                            a1.string(), a2.string(), a1.string(),
                            b1.string(), b2.string(), b2.string()});
    EXPECT_EQ(result.code, 0) << result.err;

    const std::uint64_t hits = counterFrom(stats, "engine.cache.hit");
    const std::uint64_t misses = counterFrom(stats, "engine.cache.miss");
    EXPECT_EQ(misses, 2u);
    EXPECT_EQ(hits, 4u);
    EXPECT_GE(hits * 2, hits + misses); // >= 50% hit rate
}

TEST(CliCache, CacheDirMakesASecondProcessWarmAndByteIdentical)
{
    TempDir dir;
    std::filesystem::path cacheDir = dir.path / "verdicts";
    std::filesystem::path coldStats = dir.path / "cold.json";
    std::filesystem::path warmStats = dir.path / "warm.json";
    auto file = writeVariant(dir, "mp", "t0", "t1", "x", "f", "r0", "r1");

    RunResult cold =
        run({"--cache-dir", cacheDir.string(), "--stats-json",
             coldStats.string(), file.string()});
    EXPECT_EQ(cold.code, 0) << cold.err;
    EXPECT_EQ(counterFrom(coldStats, "engine.cache.disk_store"), 1u);

    RunResult warm =
        run({"--cache-dir", cacheDir.string(), "--stats-json",
             warmStats.string(), file.string()});
    EXPECT_EQ(warm.code, 0) << warm.err;
    EXPECT_EQ(counterFrom(warmStats, "engine.cache.hit"), 1u);
    EXPECT_EQ(counterFrom(warmStats, "engine.cache.disk_hit"), 1u);
    EXPECT_EQ(counterFrom(warmStats, "engine.cache.miss"), 0u);

    // The acceptance bar: cached verdicts byte-identical to cold ones.
    EXPECT_EQ(warm.out, cold.out);
}

TEST(CliCache, NoCacheDisablesMemoization)
{
    TempDir dir;
    auto file = writeVariant(dir, "mp", "t0", "t1", "x", "f", "r0", "r1");
    std::filesystem::path stats = dir.path / "stats.json";

    RunResult result =
        run({"--no-cache", "--stats-json", stats.string(),
             file.string(), file.string(), file.string()});
    EXPECT_EQ(result.code, 0) << result.err;
    EXPECT_EQ(counterFrom(stats, "engine.cache.hit"), 0u);
    EXPECT_EQ(counterFrom(stats, "engine.cache.miss"), 0u);

    // And the output matches the cached run byte for byte.
    RunResult cached =
        run({file.string(), file.string(), file.string()});
    EXPECT_EQ(cached.out, result.out);
}

TEST(CliCache, AllTableIsByteIdenticalWithAndWithoutCache)
{
    RunResult cached = run({"--all"});
    RunResult uncached = run({"--all", "--no-cache"});
    EXPECT_EQ(cached.code, uncached.code);
    EXPECT_EQ(cached.out, uncached.out);
}

TEST(CliCache, ServeFlagParses)
{
    auto opts = nvlitmus::parseArgs({"--serve"});
    EXPECT_TRUE(opts.serve);
    EXPECT_TRUE(opts.serveSocketPath.empty());

    opts = nvlitmus::parseArgs({"--serve-socket", "/tmp/s.sock"});
    EXPECT_TRUE(opts.serve);
    EXPECT_EQ(opts.serveSocketPath, "/tmp/s.sock");

    opts = nvlitmus::parseArgs(
        {"--cache-dir", "/tmp/cache", "--cache-size", "64", "x"});
    EXPECT_EQ(opts.cacheDir, "/tmp/cache");
    EXPECT_EQ(opts.cacheSize, 64u);
    EXPECT_FALSE(opts.noCache);

    opts = nvlitmus::parseArgs({"--no-cache", "x"});
    EXPECT_TRUE(opts.noCache);

    EXPECT_THROW(nvlitmus::parseArgs({"--cache-size", "abc"}),
                 FatalError);
}

} // namespace
