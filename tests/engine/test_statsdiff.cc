/**
 * @file
 * Tests for the stats-JSON comparator behind tools/perfcmp: regression
 * detection (percentage gate plus absolute floor), report notes, and
 * the CLI's exit-code contract — nonzero on an injected regression
 * unless --report-only (the ISSUE 8 acceptance check).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/json.hh"
#include "engine/statsdiff.hh"

namespace {

using namespace mixedproxy::engine;

std::unique_ptr<json::Value>
doc(const std::string &text)
{
    std::string error;
    auto value = json::parse(text, &error);
    EXPECT_TRUE(value) << error;
    return value;
}

const char *kBaseline = R"({
  "schema": "mixedproxy.stats.v2",
  "gauges": {"wall_ms": 100.0, "ratio": 2.0},
  "timers": {
    "check": {"count": 4, "total_ms": 200.0},
    "parse": {"count": 4, "total_ms": 1.0}
  }
})";

TEST(StatsDiff, CleanComparisonHasNoRegressions)
{
    auto base = doc(kBaseline);
    auto report = diffStats(*base, *base, {});
    EXPECT_FALSE(report.hasRegression());
    // wall_ms, check, parse — the unit-less gauge is not compared.
    EXPECT_EQ(report.entries.size(), 3u);
    EXPECT_TRUE(report.notes.empty());
}

TEST(StatsDiff, DetectsRegressionAboveThreshold)
{
    auto base = doc(kBaseline);
    auto curr = doc(R"({
      "schema": "mixedproxy.stats.v2",
      "gauges": {"wall_ms": 100.0, "ratio": 2.0},
      "timers": {
        "check": {"count": 4, "total_ms": 260.0},
        "parse": {"count": 4, "total_ms": 1.0}
      }
    })");
    auto report = diffStats(*base, *curr, {});
    ASSERT_TRUE(report.hasRegression());
    for (const StatsDiffEntry &entry : report.entries) {
        EXPECT_EQ(entry.regression, entry.name == "timer:check")
            << entry.name;
    }
    EXPECT_NE(report.render().find("REGRESSION"), std::string::npos);
}

TEST(StatsDiff, AbsoluteFloorSuppressesMicroTimerNoise)
{
    auto base = doc(kBaseline);
    // parse doubles (+100%) but only by 1 ms — under the default
    // 1 ms absolute floor it must not be a strict regression.
    auto curr = doc(R"({
      "schema": "mixedproxy.stats.v2",
      "gauges": {"wall_ms": 100.0},
      "timers": {
        "check": {"count": 4, "total_ms": 200.0},
        "parse": {"count": 4, "total_ms": 2.0}
      }
    })");
    EXPECT_FALSE(diffStats(*base, *curr, {}).hasRegression());
    StatsDiffOptions strict;
    strict.minAbsMs = 0.5;
    EXPECT_TRUE(diffStats(*base, *curr, strict).hasRegression());
}

TEST(StatsDiff, SchemaAndSeriesMismatchesBecomeNotes)
{
    auto base = doc(kBaseline);
    auto curr = doc(R"({
      "schema": "mixedproxy.stats.v1",
      "gauges": {"wall_ms": 90.0, "new_ms": 5.0},
      "timers": {"check": {"count": 4, "total_ms": 190.0}}
    })");
    auto report = diffStats(*base, *curr, {});
    EXPECT_FALSE(report.hasRegression());
    bool schema_note = false;
    bool missing_note = false;
    bool new_note = false;
    for (const std::string &note : report.notes) {
        schema_note |= note.find("schema mismatch") != std::string::npos;
        missing_note |=
            note.find("missing from current: timer:parse") !=
            std::string::npos;
        new_note |= note.find("new in current: gauge:new_ms") !=
                    std::string::npos;
    }
    EXPECT_TRUE(schema_note);
    EXPECT_TRUE(missing_note);
    EXPECT_TRUE(new_note);
}

/** Write @p text to a unique temp file removed on destruction. */
class TempStats
{
  public:
    TempStats(const std::string &stem, const std::string &text)
        : _path(std::filesystem::temp_directory_path() /
                ("mp_statsdiff_" + stem + ".json"))
    {
        std::ofstream file(_path);
        file << text;
    }

    ~TempStats() { std::filesystem::remove(_path); }

    std::string path() const { return _path.string(); }

  private:
    std::filesystem::path _path;
};

int
runPerfcmp(const std::vector<std::string> &args,
           std::string *out_text = nullptr)
{
    std::ostringstream out;
    std::ostringstream err;
    int code = perfcmpMain(args, out, err);
    if (out_text)
        *out_text = out.str() + err.str();
    return code;
}

TEST(Perfcmp, ExitsNonzeroOnInjectedRegression)
{
    TempStats base("base", kBaseline);
    TempStats slow("slow", R"({
      "schema": "mixedproxy.stats.v2",
      "gauges": {"wall_ms": 100.0},
      "timers": {
        "check": {"count": 4, "total_ms": 500.0},
        "parse": {"count": 4, "total_ms": 1.0}
      }
    })");
    std::string out;
    EXPECT_EQ(runPerfcmp({base.path(), slow.path()}, &out), 1);
    EXPECT_NE(out.find("regressions found"), std::string::npos);

    // --report-only downgrades the regression to exit 0 (CI smoke).
    EXPECT_EQ(runPerfcmp({"--report-only", base.path(), slow.path()},
                         &out),
              0);
    EXPECT_NE(out.find("report-only"), std::string::npos);

    // A generous threshold clears it entirely.
    EXPECT_EQ(runPerfcmp({"--threshold=200", base.path(), slow.path()},
                         &out),
              0);
    EXPECT_NE(out.find("no regressions"), std::string::npos);
}

TEST(Perfcmp, IdenticalFilesCompareClean)
{
    TempStats base("same_a", kBaseline);
    TempStats curr("same_b", kBaseline);
    std::string out;
    EXPECT_EQ(runPerfcmp({base.path(), curr.path()}, &out), 0);
    EXPECT_NE(out.find("no regressions"), std::string::npos);
}

TEST(Perfcmp, UsageAndIoErrorsExitTwo)
{
    TempStats base("usage", kBaseline);
    EXPECT_EQ(runPerfcmp({}), 2);
    EXPECT_EQ(runPerfcmp({base.path()}), 2);
    EXPECT_EQ(runPerfcmp({"--bogus", base.path(), base.path()}), 2);
    EXPECT_EQ(runPerfcmp({"--threshold=abc", base.path(), base.path()}),
              2);
    EXPECT_EQ(runPerfcmp({base.path(), "/nonexistent_dir_mp/x.json"}),
              2);
    TempStats garbage("garbage", "not json at all");
    EXPECT_EQ(runPerfcmp({base.path(), garbage.path()}), 2);
}

} // namespace
