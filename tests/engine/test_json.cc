/**
 * @file
 * Tests for the engine's strict JSON reader/writer: round trips,
 * integer preservation, escapes, and error reporting.
 */

#include <gtest/gtest.h>

#include "engine/json.hh"

namespace {

using namespace mixedproxy::engine;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(json::parse("null")->isNull());
    EXPECT_TRUE(json::parse("true")->boolean);
    EXPECT_FALSE(json::parse("false")->boolean);
    EXPECT_EQ(json::parse("\"hi\"")->string, "hi");
    EXPECT_DOUBLE_EQ(json::parse("-2.5")->number, -2.5);
}

TEST(Json, PreservesUint64Exactly)
{
    auto doc = json::parse("18446744073709551615");
    ASSERT_TRUE(doc);
    EXPECT_TRUE(doc->isInteger);
    EXPECT_EQ(doc->integer, 18446744073709551615ull);
    EXPECT_EQ(doc->dump(), "18446744073709551615");

    // Signed / fractional / exponent forms are doubles, not integers.
    EXPECT_FALSE(json::parse("-3")->isInteger);
    EXPECT_FALSE(json::parse("3.0")->isInteger);
    EXPECT_FALSE(json::parse("3e2")->isInteger);
}

TEST(Json, ObjectAndArrayRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2,3],\"b\":{\"c\":true},\"d\":\"x\"}";
    auto doc = json::parse(text);
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->dump(), text);
    ASSERT_TRUE(doc->find("a"));
    EXPECT_EQ(doc->find("a")->array.size(), 3u);
    EXPECT_TRUE(doc->find("b")->find("c")->boolean);
    EXPECT_EQ(doc->stringOr("d", ""), "x");
    EXPECT_EQ(doc->stringOr("missing", "fb"), "fb");
    EXPECT_TRUE(doc->boolOr("missing", true));
    EXPECT_EQ(doc->uintOr("missing", 9u), 9u);
}

TEST(Json, StringEscapesRoundTrip)
{
    auto doc = json::parse("\"a\\n\\t\\\"\\\\b\\u0041\"");
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->string, "a\n\t\"\\bA");
    auto again = json::parse(doc->dump());
    ASSERT_TRUE(again);
    EXPECT_EQ(again->string, doc->string);
}

TEST(Json, ControlCharactersAreEscapedOnDump)
{
    json::Value value = json::Value::makeString(std::string("a\x01z"));
    auto reparsed = json::parse(value.dump());
    ASSERT_TRUE(reparsed);
    EXPECT_EQ(reparsed->string, "a\x01z");
}

TEST(Json, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(json::parse("", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(json::parse("{", &error));
    EXPECT_FALSE(json::parse("{\"a\":}", &error));
    EXPECT_FALSE(json::parse("[1,]", &error));
    EXPECT_FALSE(json::parse("tru", &error));
    EXPECT_FALSE(json::parse("\"unterminated", &error));
    EXPECT_FALSE(json::parse("1 2", &error)); // trailing garbage
    EXPECT_FALSE(json::parse("{\"a\":1,}", &error));
}

TEST(Json, FindOnNonObjectIsNull)
{
    EXPECT_EQ(json::parse("[1]")->find("a"), nullptr);
    EXPECT_EQ(json::parse("3")->find("a"), nullptr);
}

} // namespace
