/**
 * @file
 * The golden canonical-key suite (ISSUE 6): engine::canonicalKey() must
 * be invariant under thread permutation, thread renaming, virtual-
 * address renaming, and register renaming — over the entire built-in
 * corpus, not just hand-picked examples — and must separate tests whose
 * verdicts differ. Where two corpus tests do share a key, the suite
 * proves the claim the verdict cache rests on: their admitted outcome
 * sets are identical modulo the rename maps.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/canonical.hh"
#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "model/checker.hh"
#include "relation/error.hh"

#include "rename.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::engine_tests;

litmus::LitmusTest
messagePassing()
{
    return litmus::LitmusBuilder("mp")
        .thread("t0", 0, 0,
                {"st.global.u32 [x], 1", "st.release.gpu.u32 [f], 1"})
        .thread("t1", 1, 0,
                {"ld.acquire.gpu.u32 r0, [f]", "ld.global.u32 r1, [x]"})
        .require("!(t1.r0 == 1) || t1.r1 == 1")
        .build();
}

TEST(CanonicalKey, InvariantUnderThreadPermutation)
{
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        RenamePlan plan;
        plan.threadOrder.resize(test.threads().size());
        std::iota(plan.threadOrder.begin(), plan.threadOrder.end(), 0);
        std::reverse(plan.threadOrder.begin(), plan.threadOrder.end());
        EXPECT_EQ(engine::canonicalKey(test),
                  engine::canonicalKey(applyRename(test, plan)))
            << "thread permutation changed the key of " << test.name();
    }
}

TEST(CanonicalKey, InvariantUnderThreadRenaming)
{
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        RenamePlan plan;
        std::size_t i = 0;
        for (const litmus::Thread &thread : test.threads())
            plan.threads[thread.name] =
                "zzthread" + std::to_string(i++);
        EXPECT_EQ(engine::canonicalKey(test),
                  engine::canonicalKey(applyRename(test, plan)))
            << "thread renaming changed the key of " << test.name();
    }
}

TEST(CanonicalKey, InvariantUnderAddressRenaming)
{
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        RenamePlan plan;
        std::size_t i = 0;
        for (const std::string &location : test.locations())
            for (const std::string &va : test.addressesOf(location))
                plan.addresses[va] = "zzaddr" + std::to_string(i++);
        EXPECT_EQ(engine::canonicalKey(test),
                  engine::canonicalKey(applyRename(test, plan)))
            << "address renaming changed the key of " << test.name();
    }
}

TEST(CanonicalKey, InvariantUnderRegisterRenaming)
{
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        RenamePlan plan = freshNamePlan(test, false);
        plan.threads.clear();
        plan.addresses.clear();
        EXPECT_EQ(engine::canonicalKey(test),
                  engine::canonicalKey(applyRename(test, plan)))
            << "register renaming changed the key of " << test.name();
    }
}

TEST(CanonicalKey, InvariantUnderEverythingAtOnce)
{
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        RenamePlan plan = freshNamePlan(test, true);
        EXPECT_EQ(engine::canonicalKey(test),
                  engine::canonicalKey(applyRename(test, plan)))
            << "combined renaming changed the key of " << test.name();
    }
}

TEST(CanonicalKey, IgnoresTestNameAndAssertions)
{
    litmus::LitmusTest a = messagePassing();
    litmus::LitmusTest b =
        litmus::LitmusBuilder("completely_different_name")
            .thread("t0", 0, 0,
                    {"st.global.u32 [x], 1",
                     "st.release.gpu.u32 [f], 1"})
            .thread("t1", 1, 0,
                    {"ld.acquire.gpu.u32 r0, [f]",
                     "ld.global.u32 r1, [x]"})
            .forbid("t1.r0 == 1 && t1.r1 == 0")
            .build();
    EXPECT_EQ(engine::canonicalKey(a), engine::canonicalKey(b));
}

TEST(CanonicalKey, SeparatesSemanticsInitsAliasesAndPlacement)
{
    const std::string base = engine::canonicalKey(messagePassing());

    litmus::LitmusTest weaker =
        litmus::LitmusBuilder("mp")
            .thread("t0", 0, 0,
                    {"st.global.u32 [x], 1", "st.relaxed.gpu.u32 [f], 1"})
            .thread("t1", 1, 0,
                    {"ld.acquire.gpu.u32 r0, [f]",
                     "ld.global.u32 r1, [x]"})
            .require("!(t1.r0 == 1) || t1.r1 == 1")
            .build();
    EXPECT_NE(base, engine::canonicalKey(weaker));

    litmus::LitmusTest withInit =
        litmus::LitmusBuilder("mp")
            .init("x", 7)
            .thread("t0", 0, 0,
                    {"st.global.u32 [x], 1",
                     "st.release.gpu.u32 [f], 1"})
            .thread("t1", 1, 0,
                    {"ld.acquire.gpu.u32 r0, [f]",
                     "ld.global.u32 r1, [x]"})
            .require("!(t1.r0 == 1) || t1.r1 == 1")
            .build();
    EXPECT_NE(base, engine::canonicalKey(withInit));

    litmus::LitmusTest aliased =
        litmus::LitmusBuilder("mp")
            .alias("x", "f")
            .thread("t0", 0, 0,
                    {"st.global.u32 [x], 1",
                     "st.release.gpu.u32 [f], 1"})
            .thread("t1", 1, 0,
                    {"ld.acquire.gpu.u32 r0, [f]",
                     "ld.global.u32 r1, [x]"})
            .require("!(t1.r0 == 1) || t1.r1 == 1")
            .build();
    EXPECT_NE(base, engine::canonicalKey(aliased));

    litmus::LitmusTest sameCta =
        litmus::LitmusBuilder("mp")
            .thread("t0", 0, 0,
                    {"st.global.u32 [x], 1",
                     "st.release.gpu.u32 [f], 1"})
            .thread("t1", 0, 0,
                    {"ld.acquire.gpu.u32 r0, [f]",
                     "ld.global.u32 r1, [x]"})
            .require("!(t1.r0 == 1) || t1.r1 == 1")
            .build();
    EXPECT_NE(base, engine::canonicalKey(sameCta));
}

TEST(CanonicalKey, SeparatesDifferentVerdictCorpusTests)
{
    // Paired tests whose verdicts the paper distinguishes (weak vs.
    // fenced) must never collide.
    const char *pairs[][2] = {
        {"fig2_iriw_weak", "fig2_iriw_fence_sc"},
    };
    for (const auto &pair : pairs) {
        EXPECT_NE(
            engine::canonicalKey(litmus::testByName(pair[0])),
            engine::canonicalKey(litmus::testByName(pair[1])))
            << pair[0] << " vs " << pair[1];
    }
}

TEST(CanonicalKey, CorpusCollisionsAreTrueIsomorphisms)
{
    // Group the corpus by key; any group larger than one must contain
    // only tests with identical *canonical* outcome sets — i.e. a
    // shared key is a genuine isomorphism, never an unsound merge.
    std::map<std::string, std::vector<const litmus::LitmusTest *>>
        byKey;
    for (const litmus::LitmusTest &test : litmus::allTests())
        byKey[engine::canonicalKey(test)].push_back(&test);

    model::CheckOptions opts;
    opts.collectWitnesses = false;
    model::Checker checker(opts);
    for (const auto &[key, group] : byKey) {
        if (group.size() < 2)
            continue;
        std::set<std::set<litmus::Outcome>> canonicalOutcomeSets;
        for (const litmus::LitmusTest *test : group) {
            engine::CanonicalForm form = engine::canonicalize(*test);
            std::set<litmus::Outcome> canonical;
            for (const litmus::Outcome &outcome :
                 checker.check(*test).outcomes)
                canonical.insert(form.toCanonical(outcome));
            canonicalOutcomeSets.insert(std::move(canonical));
        }
        EXPECT_EQ(canonicalOutcomeSets.size(), 1u)
            << group.size() << " corpus tests share a key but admit "
            << "different canonical outcome sets (first: "
            << group[0]->name() << ")";
    }
}

TEST(CanonicalForm, OutcomeTranslationRoundTrips)
{
    litmus::LitmusTest test = messagePassing();
    engine::CanonicalForm form = engine::canonicalize(test);

    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 1;
    outcome.registers["t1.r1"] = 1;
    outcome.memory["x"] = 1;
    outcome.memory["f"] = 1;

    litmus::Outcome canonical = form.toCanonical(outcome);
    EXPECT_EQ(form.fromCanonical(canonical), outcome);

    // The canonical outcome speaks only the canonical namespace.
    for (const auto &[reg, value] : canonical.registers)
        EXPECT_EQ(reg.find("zz"), std::string::npos) << reg;
    for (const auto &[reg, value] : canonical.registers)
        EXPECT_EQ(reg[0], 't') << reg;
    for (const auto &[loc, value] : canonical.memory)
        EXPECT_EQ(loc[0], 'm') << loc;
}

TEST(CanonicalForm, RenamedTestsTranslateToTheSameCanonicalOutcome)
{
    litmus::LitmusTest test = messagePassing();
    RenamePlan plan = freshNamePlan(test, true);
    litmus::LitmusTest variant = applyRename(test, plan);
    ASSERT_EQ(engine::canonicalKey(test),
              engine::canonicalKey(variant));

    model::CheckOptions opts;
    opts.collectWitnesses = false;
    model::Checker checker(opts);

    engine::CanonicalForm formA = engine::canonicalize(test);
    engine::CanonicalForm formB = engine::canonicalize(variant);

    std::set<litmus::Outcome> a;
    for (const litmus::Outcome &outcome : checker.check(test).outcomes)
        a.insert(formA.toCanonical(outcome));
    std::set<litmus::Outcome> b;
    for (const litmus::Outcome &outcome :
         checker.check(variant).outcomes)
        b.insert(formB.toCanonical(outcome));
    EXPECT_EQ(a, b);
}

TEST(CanonicalForm, RejectsUnknownNames)
{
    engine::CanonicalForm form = engine::canonicalize(messagePassing());
    litmus::Outcome bogus;
    bogus.registers["t9.r9"] = 1;
    EXPECT_THROW(form.toCanonical(bogus), PanicError);
    litmus::Outcome corrupt;
    corrupt.registers["t7.r7"] = 1;
    EXPECT_THROW(form.fromCanonical(corrupt), PanicError);
}

} // namespace
