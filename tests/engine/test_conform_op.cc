/**
 * @file
 * Tests for the engine-level trace-conformance operation (ISSUE 10):
 * Request::forConform / RequestKind::Conform through Engine::submit,
 * the rendered report, and the daemon's "conform" command (file path
 * and inline trace variants, violation attribution, error paths).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "conform/fault.hh"
#include "engine/engine.hh"
#include "engine/json.hh"
#include "engine/request.hh"
#include "engine/service.hh"
#include "litmus/registry.hh"
#include "microarch/simulator.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::engine;

std::string
recordTrace(const std::string &testName, std::uint64_t seed)
{
    std::ostringstream out;
    microarch::Simulator(microarch::SimOptions{})
        .runTraced(litmus::testByName(testName), seed, out);
    return out.str();
}

std::unique_ptr<json::Value>
response(Engine &engine, const std::string &line)
{
    std::string text = handleRequestLine(engine, line, nullptr);
    auto doc = json::parse(text);
    EXPECT_TRUE(doc && doc->isObject()) << text;
    return doc;
}

std::string
jsonQuote(const std::string &text)
{
    return json::Value::makeString(text).dump();
}

TEST(ConformOp, InlineTraceVerdict)
{
    Engine engine;
    Request request = Request::forConform("");
    request.conform.traceText = recordTrace("fig9_message_passing", 3);

    Verdict verdict = engine.submit(request);
    ASSERT_TRUE(verdict.conform.has_value());
    EXPECT_TRUE(verdict.conform->conformant());
    EXPECT_TRUE(verdict.passed());
    EXPECT_EQ(verdict.conform->test, "fig9_message_passing");

    std::string report = renderReport(request, verdict);
    EXPECT_NE(report.find("conform"), std::string::npos);
    EXPECT_NE(report.find("CONFORMANT"), std::string::npos);
}

TEST(ConformOp, FaultedTraceFailsWithAttribution)
{
    Engine engine;
    const std::string trace = recordTrace("fig9_message_passing", 3);
    auto faulted =
        conform::injectFault(trace, conform::FaultKind::Corrupt, 1);
    ASSERT_TRUE(faulted.has_value());

    Request request = Request::forConform("");
    request.conform.traceText = *faulted;
    Verdict verdict = engine.submit(request);
    ASSERT_TRUE(verdict.conform.has_value());
    EXPECT_FALSE(verdict.conform->conformant());
    EXPECT_FALSE(verdict.passed());
    const auto rfValue = static_cast<std::size_t>(
        conform::ViolationKind::RfValue);
    EXPECT_GT(verdict.conform->stats.byKind[rfValue], 0u);
}

TEST(ConformOp, ConformVerdictsAreNeverCached)
{
    // A trace is one concrete execution, not a canonicalizable litmus
    // test — resubmitting the same trace must re-check, not hit the
    // verdict cache.
    Engine engine;
    Request request = Request::forConform("");
    request.conform.traceText = recordTrace("fig9_message_passing", 3);
    engine.submit(request);
    Verdict again = engine.submit(request);
    EXPECT_FALSE(again.cacheHit);
}

TEST(ConformOp, DaemonConformPathAndInline)
{
    Engine engine;
    const std::string trace = recordTrace("coww_same_thread", 9);

    const auto path = std::filesystem::temp_directory_path() /
                      "mp_test_conform_op.trace";
    {
        std::ofstream file(path);
        file << trace;
    }

    auto byPath = response(
        engine, "{\"cmd\":\"conform\",\"id\":1,\"path\":" +
                    jsonQuote(path.string()) + "}");
    EXPECT_TRUE(byPath->boolOr("ok", false));
    EXPECT_TRUE(byPath->boolOr("conformant", false));
    EXPECT_EQ(byPath->stringOr("test", ""), "coww_same_thread");
    EXPECT_GT(byPath->uintOr("events", 0), 0u);
    EXPECT_EQ(byPath->uintOr("violations", 1), 0u);
    std::filesystem::remove(path);

    auto faulted =
        conform::injectFault(trace, conform::FaultKind::Reorder, 1);
    ASSERT_TRUE(faulted.has_value());
    auto inline_ = response(
        engine, "{\"cmd\":\"conform\",\"id\":2,\"trace\":" +
                    jsonQuote(*faulted) + "}");
    EXPECT_TRUE(inline_->boolOr("ok", false));
    EXPECT_FALSE(inline_->boolOr("conformant", true));
    EXPECT_GT(inline_->uintOr("violations", 0), 0u);
    const json::Value *byKind = inline_->find("violations_by_kind");
    ASSERT_TRUE(byKind && byKind->isObject());
    EXPECT_GT(byKind->uintOr("coherence", 0), 0u);
}

TEST(ConformOp, DaemonConformErrorPaths)
{
    Engine engine;
    // Neither "path" nor "trace" supplied.
    EXPECT_FALSE(response(engine, "{\"cmd\":\"conform\",\"id\":3}")
                     ->boolOr("ok", true));
    // Unreadable path.
    EXPECT_FALSE(
        response(engine, "{\"cmd\":\"conform\",\"id\":4,\"path\":"
                         "\"/nonexistent/trace.jsonl\"}")
            ->boolOr("ok", true));
}

} // namespace
