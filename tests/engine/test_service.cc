/**
 * @file
 * Tests for the daemon protocol: request parsing, error responses,
 * cache_hit reporting, ordered responses, shutdown, and the per-request
 * session merge into the server's parent session.
 */

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hh"
#include "engine/eventlog.hh"
#include "engine/json.hh"
#include "engine/service.hh"
#include "obs/obs.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::engine;

std::unique_ptr<json::Value>
response(Engine &engine, const std::string &line,
         bool *shutdown = nullptr)
{
    std::string text = handleRequestLine(engine, line, shutdown);
    auto doc = json::parse(text);
    EXPECT_TRUE(doc && doc->isObject()) << text;
    return doc;
}

const std::string kMpSource = "name: wire_mp\n"
                              "thread t0 cta 0 gpu 0:\n"
                              "  st.global.u32 [x], 1\n"
                              "  st.release.gpu.u32 [f], 1\n"
                              "thread t1 cta 1 gpu 0:\n"
                              "  ld.acquire.gpu.u32 r0, [f]\n"
                              "  ld.global.u32 r1, [x]\n"
                              "require: !(t1.r0 == 1) || t1.r1 == 1\n";

std::string
jsonQuote(const std::string &text)
{
    return json::Value::makeString(text).dump();
}

TEST(Service, PingPongAndShutdown)
{
    Engine engine;
    auto pong = response(engine, "{\"cmd\":\"ping\",\"id\":7}");
    EXPECT_TRUE(pong->boolOr("ok", false));
    EXPECT_TRUE(pong->boolOr("pong", false));
    EXPECT_EQ(pong->uintOr("id", 0), 7u);

    bool shutdown = false;
    auto bye = response(engine, "{\"cmd\":\"shutdown\"}", &shutdown);
    EXPECT_TRUE(shutdown);
    EXPECT_TRUE(bye->boolOr("ok", false));
}

TEST(Service, MalformedRequestsGetErrorResponses)
{
    Engine engine;
    EXPECT_FALSE(response(engine, "not json")->boolOr("ok", true));
    EXPECT_FALSE(response(engine, "[1,2]")->boolOr("ok", true));
    EXPECT_FALSE(
        response(engine, "{\"cmd\":\"frobnicate\"}")->boolOr("ok", true));
    EXPECT_FALSE(response(engine, "{}")->boolOr("ok", true));

    auto unknown =
        response(engine, "{\"id\":3,\"test\":\"no_such_test\"}");
    EXPECT_FALSE(unknown->boolOr("ok", true));
    EXPECT_EQ(unknown->uintOr("id", 0), 3u);
    EXPECT_NE(unknown->stringOr("error", "").find("no_such_test"),
              std::string::npos);

    auto badSource =
        response(engine, "{\"litmus\":\"thread t0 oops\"}");
    EXPECT_FALSE(badSource->boolOr("ok", true));
}

TEST(Service, BuiltInTestCheckReportsCacheHits)
{
    Engine engine;
    const std::string line = "{\"test\":\"fig9_message_passing\"}";
    auto cold = response(engine, line);
    EXPECT_TRUE(cold->boolOr("ok", false));
    EXPECT_TRUE(cold->boolOr("passed", false));
    EXPECT_FALSE(cold->boolOr("cache_hit", true));
    EXPECT_NE(cold->stringOr("report", "").find("fig9_message_passing"),
              std::string::npos);

    auto warm = response(engine, line);
    EXPECT_TRUE(warm->boolOr("cache_hit", false));
    EXPECT_EQ(warm->stringOr("report", ""),
              cold->stringOr("report", ""));
}

TEST(Service, InlineLitmusSourceHitsAcrossSpellings)
{
    Engine engine;
    auto cold = response(engine, "{\"litmus\":" + jsonQuote(kMpSource) + "}");
    ASSERT_TRUE(cold->boolOr("ok", false));
    EXPECT_FALSE(cold->boolOr("cache_hit", true));

    // The same program with every identifier renamed is a cache hit
    // (the instruction decoder requires r-prefixed register names).
    std::string renamedSource = "name: wire_mp_renamed\n"
                                "thread alpha cta 0 gpu 0:\n"
                                "  st.global.u32 [data], 1\n"
                                "  st.release.gpu.u32 [flag], 1\n"
                                "thread beta cta 1 gpu 0:\n"
                                "  ld.acquire.gpu.u32 r7, [flag]\n"
                                "  ld.global.u32 r9, [data]\n"
                                "require: !(beta.r7 == 1) || beta.r9 == 1\n";
    auto warm =
        response(engine, "{\"litmus\":" + jsonQuote(renamedSource) + "}");
    ASSERT_TRUE(warm->boolOr("ok", false));
    EXPECT_TRUE(warm->boolOr("cache_hit", false));
    EXPECT_TRUE(warm->boolOr("passed", false));
    // Each report speaks its request's own namespace.
    EXPECT_NE(warm->stringOr("report", "").find("beta.r7"),
              std::string::npos);
}

TEST(Service, ModeAndOptionKnobsAreHonored)
{
    Engine engine;
    auto ptx60 = response(
        engine, "{\"test\":\"fig9_message_passing\",\"mode\":\"ptx60\"}");
    EXPECT_TRUE(ptx60->boolOr("ok", false));
    EXPECT_NE(ptx60->stringOr("report", "").find("[ptx60]"),
              std::string::npos);

    auto bad = response(
        engine, "{\"test\":\"fig9_message_passing\",\"mode\":\"ptx99\"}");
    EXPECT_FALSE(bad->boolOr("ok", true));

    auto witness = response(
        engine,
        "{\"test\":\"fig9_message_passing\",\"witness\":true}");
    EXPECT_TRUE(witness->boolOr("ok", false));
    EXPECT_FALSE(witness->boolOr("cache_hit", true));
}

TEST(Service, ServeStreamsResponsesInRequestOrder)
{
    Engine engine;
    std::istringstream in("{\"cmd\":\"ping\",\"id\":0}\n"
                          "{\"test\":\"fig9_message_passing\",\"id\":1}\n"
                          "{\"test\":\"fig9_message_passing\",\"id\":2}\n"
                          "{\"cmd\":\"ping\",\"id\":3}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.jobs = 4;
    EXPECT_EQ(serve(engine, options, in, out, err), 0);
    EXPECT_EQ(err.str(), "");

    std::vector<std::string> lines;
    std::istringstream reader(out.str());
    for (std::string line; std::getline(reader, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    for (std::size_t i = 0; i < lines.size(); i++) {
        auto doc = json::parse(lines[i]);
        ASSERT_TRUE(doc) << lines[i];
        EXPECT_EQ(doc->uintOr("id", 99), i) << lines[i];
        EXPECT_TRUE(doc->boolOr("ok", false));
    }
    // Identical requests coalesce: exactly one computes the verdict
    // and the other reports the hit — but either may have run first,
    // so only the hit *count* is deterministic.
    auto first = json::parse(lines[1]);
    auto second = json::parse(lines[2]);
    EXPECT_NE(first->boolOr("cache_hit", false),
              second->boolOr("cache_hit", true));
}

TEST(Service, ShutdownStopsTheStreamEarly)
{
    Engine engine;
    std::istringstream in("{\"cmd\":\"shutdown\",\"id\":0}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    EXPECT_EQ(serve(engine, options, in, out, err), 0);
    auto doc = json::parse(out.str().substr(0, out.str().find('\n')));
    ASSERT_TRUE(doc);
    EXPECT_TRUE(doc->boolOr("shutdown", false));
}

TEST(Service, OpIsAnAliasForCmd)
{
    Engine engine;
    auto pong = response(engine, "{\"op\":\"ping\",\"id\":4}");
    EXPECT_TRUE(pong->boolOr("pong", false));
    EXPECT_EQ(pong->uintOr("id", 0), 4u);
    // "cmd" wins when both are present.
    auto both =
        response(engine, "{\"cmd\":\"ping\",\"op\":\"shutdown\"}");
    EXPECT_TRUE(both->boolOr("pong", false));
}

TEST(Service, MetricsOpNeedsAServiceState)
{
    // Direct handleRequestLine calls (no daemon) have no live state to
    // report; the op must fail cleanly instead of inventing numbers.
    Engine engine;
    auto bare = response(engine, "{\"op\":\"metrics\"}");
    EXPECT_FALSE(bare->boolOr("ok", true));
    EXPECT_NE(bare->stringOr("error", "").find("not available"),
              std::string::npos);
}

TEST(Service, MetricsOpReportsLiveServiceState)
{
    Engine engine;
    // jobs=1 serializes the stream, so by the time the metrics request
    // runs, both earlier requests have finished.
    std::istringstream in(
        "{\"test\":\"fig9_message_passing\",\"id\":0}\n"
        "{\"test\":\"fig9_message_passing\",\"id\":1}\n"
        "{\"op\":\"metrics\",\"id\":2}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.jobs = 1;
    ASSERT_EQ(serve(engine, options, in, out, err), 0);

    std::vector<std::string> lines;
    std::istringstream reader(out.str());
    for (std::string line; std::getline(reader, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    auto metrics = json::parse(lines[2]);
    ASSERT_TRUE(metrics) << lines[2];
    EXPECT_TRUE(metrics->boolOr("ok", false));
    EXPECT_GE(metrics->find("uptime_ms")->number, 0.0);
    // The metrics request itself is in flight and already counted.
    EXPECT_EQ(metrics->uintOr("requests_total", 0), 3u);
    EXPECT_EQ(metrics->uintOr("errors_total", 99), 0u);
    EXPECT_GE(metrics->uintOr("in_flight", 0), 1u);

    const json::Value *build = metrics->find("build");
    ASSERT_TRUE(build && build->isObject());
    for (const char *key : {"git_sha", "compiler", "build_type"})
        EXPECT_FALSE(build->stringOr(key, "").empty()) << key;

    // Merged per-request counters: one miss, one hit.
    const json::Value *counters = metrics->find("counters");
    ASSERT_TRUE(counters && counters->isObject());
    EXPECT_EQ(counters->uintOr("engine.cache.miss", 0), 1u);
    EXPECT_EQ(counters->uintOr("engine.cache.hit", 0), 1u);

    // Per-op latency summaries for the finished check requests.
    const json::Value *ops = metrics->find("ops");
    ASSERT_TRUE(ops && ops->isObject());
    const json::Value *check = ops->find("check");
    ASSERT_TRUE(check && check->isObject());
    EXPECT_EQ(check->uintOr("count", 0), 2u);
    EXPECT_GE(check->find("total_ms")->number, 0.0);
    EXPECT_TRUE(check->find("p95_ms") != nullptr);
}

TEST(Service, ProfileEnumKnobPublishesSampledCounters)
{
    Engine engine;
    // profile_enum samples every candidate of the (cache-missing)
    // first check; the sampled counters merge into the live registry
    // that the metrics op snapshots.
    std::istringstream in(
        "{\"test\":\"fig9_message_passing\",\"profile_enum\":1,"
        "\"id\":0}\n"
        "{\"op\":\"metrics\",\"id\":1}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.jobs = 1;
    ASSERT_EQ(serve(engine, options, in, out, err), 0);

    std::string second = out.str().substr(out.str().find('\n') + 1);
    auto metrics = json::parse(second);
    ASSERT_TRUE(metrics) << second;
    const json::Value *counters = metrics->find("counters");
    ASSERT_TRUE(counters && counters->isObject());
    const std::uint64_t candidates =
        counters->uintOr("checker.candidates", 0);
    EXPECT_GT(candidates, 0u);
    EXPECT_EQ(counters->uintOr("checker.enum.sampled.candidates", 0),
              candidates);
    EXPECT_GT(counters->uintOr("checker.enum.sampled.co_build_ns", 0),
              0u);
}

TEST(Service, EnumCoreKnobSelectsCoreAndRejectsUnknown)
{
    Engine engine;
    // The two cores must answer identically (same passed verdict and
    // outcome count); a bogus core name is a structured error, not a
    // dead daemon.
    std::istringstream in(
        "{\"test\":\"fig9_message_passing\",\"id\":0}\n"
        "{\"test\":\"fig9_message_passing\","
        "\"enum_core\":\"legacy\",\"id\":1}\n"
        "{\"test\":\"fig9_message_passing\","
        "\"enum_core\":\"bogus\",\"id\":2}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.jobs = 1;
    ASSERT_EQ(serve(engine, options, in, out, err), 0);

    std::istringstream lines(out.str());
    std::string first, second, third;
    std::getline(lines, first);
    std::getline(lines, second);
    std::getline(lines, third);
    auto incremental = json::parse(first);
    auto legacy = json::parse(second);
    auto bogus = json::parse(third);
    ASSERT_TRUE(incremental && legacy && bogus);
    EXPECT_TRUE(incremental->boolOr("ok", false));
    EXPECT_TRUE(legacy->boolOr("ok", false));
    EXPECT_EQ(incremental->boolOr("passed", false),
              legacy->boolOr("passed", true));
    EXPECT_EQ(incremental->stringOr("report", "a"),
              legacy->stringOr("report", "b"));
    EXPECT_FALSE(bogus->boolOr("ok", true));
    EXPECT_NE(bogus->stringOr("error", "").find("enum core"),
              std::string::npos);
}

TEST(Service, ErrorRequestsCountIntoErrorsTotal)
{
    Engine engine;
    std::istringstream in("{\"cmd\":\"frobnicate\",\"id\":0}\n"
                          "{\"op\":\"metrics\",\"id\":1}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.jobs = 1;
    ASSERT_EQ(serve(engine, options, in, out, err), 0);
    std::string second = out.str().substr(out.str().find('\n') + 1);
    auto metrics = json::parse(second.substr(0, second.find('\n')));
    ASSERT_TRUE(metrics);
    EXPECT_EQ(metrics->uintOr("errors_total", 0), 1u);
}

TEST(Service, JsonlLogValidatesSchemaAndRequestIds)
{
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "mp_service_log.jsonl";
    std::filesystem::remove(path);
    {
        Engine engine;
        std::istringstream in(
            "{\"test\":\"fig9_message_passing\",\"id\":0}\n"
            "{\"test\":\"fig9_message_passing\",\"id\":1}\n"
            "{\"test\":\"fig9_message_passing\",\"id\":2}\n"
            "{\"cmd\":\"frobnicate\",\"id\":3}\n");
        std::ostringstream out;
        std::ostringstream err;
        ServeOptions options;
        options.jobs = 4;
        options.logJsonPath = path.string();
        ASSERT_EQ(serve(engine, options, in, out, err), 0);
    }

    std::ifstream log(path);
    std::set<std::uint64_t> started;
    std::set<std::uint64_t> finished;
    std::size_t cache_hits = 0;
    std::size_t errors = 0;
    bool saw_server_start = false;
    for (std::string line; std::getline(log, line);) {
        auto record = json::parse(line);
        ASSERT_TRUE(record && record->isObject()) << line;
        // Every record carries the schema tag, a timestamp, a level,
        // and an event name.
        EXPECT_EQ(record->stringOr("schema", ""), kEventLogSchema)
            << line;
        EXPECT_GT(record->uintOr("ts_ms", 0), 0u) << line;
        const std::string level = record->stringOr("level", "");
        EXPECT_TRUE(level == "info" || level == "error") << line;
        const std::string event = record->stringOr("event", "");
        if (event == "server.start") {
            saw_server_start = true;
            EXPECT_EQ(record->uintOr("jobs", 0), 4u);
            continue;
        }
        const std::uint64_t id = record->uintOr("request_id", 0);
        EXPECT_GE(id, 1u) << line;
        EXPECT_LE(id, 4u) << line;
        if (event == "request.start") {
            EXPECT_TRUE(started.insert(id).second) << line;
        } else if (event == "request.finish") {
            EXPECT_TRUE(finished.insert(id).second) << line;
            EXPECT_EQ(record->stringOr("op", ""), "check") << line;
            EXPECT_TRUE(record->find("duration_ms") != nullptr) << line;
            EXPECT_TRUE(record->find("cache_hit") != nullptr) << line;
        } else if (event == "request.cache_hit") {
            cache_hits++;
        } else if (event == "request.error") {
            errors++;
            EXPECT_EQ(level, "error") << line;
            EXPECT_FALSE(record->stringOr("error", "").empty()) << line;
        } else {
            ADD_FAILURE() << "unknown event in " << line;
        }
    }
    EXPECT_TRUE(saw_server_start);
    // Ids are assigned in arrival order, exactly once each.
    EXPECT_EQ(started, (std::set<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(finished.size(), 3u);
    EXPECT_EQ(cache_hits, 2u);
    EXPECT_EQ(errors, 1u);
    std::filesystem::remove(path);
}

TEST(Service, RequestIdsStampParentTraceAcrossJobs)
{
    Engine engine;
    obs::Session parent;
    parent.enable();
    {
        std::istringstream in(
            "{\"test\":\"fig9_message_passing\"}\n"
            "{\"test\":\"fig2_iriw_weak\"}\n"
            "{\"test\":\"fig8a_alias_fence\"}\n");
        std::ostringstream out;
        std::ostringstream err;
        ServeOptions options;
        options.jobs = 4;
        options.session = &parent;
        ASSERT_EQ(serve(engine, options, in, out, err), 0);
    }
    parent.disable();
    std::set<std::uint64_t> ids;
    for (const obs::TraceEvent &event : parent.tracer.events()) {
        EXPECT_NE(event.requestId, 0u) << event.name;
        ids.insert(event.requestId);
    }
    // Every span of every request is stamped; the three requests get
    // ids 1..3 in arrival order regardless of worker interleaving.
    EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(Service, RequestMetricsMergeIntoTheParentSession)
{
    Engine engine;
    obs::Session parent;
    parent.enable();
    {
        std::istringstream in(
            "{\"test\":\"fig9_message_passing\"}\n"
            "{\"test\":\"fig9_message_passing\"}\n"
            "{\"test\":\"fig9_message_passing\"}\n");
        std::ostringstream out;
        std::ostringstream err;
        ServeOptions options;
        options.jobs = 2;
        options.session = &parent;
        EXPECT_EQ(serve(engine, options, in, out, err), 0);
    }
    parent.disable();
    EXPECT_EQ(parent.metrics.counter("engine.cache.miss"), 1u);
    EXPECT_EQ(parent.metrics.counter("engine.cache.hit"), 2u);
    EXPECT_GE(parent.metrics.timer("engine.request").count, 3u);
}

} // namespace
