/**
 * @file
 * Tests for the daemon protocol: request parsing, error responses,
 * cache_hit reporting, ordered responses, shutdown, and the per-request
 * session merge into the server's parent session.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hh"
#include "engine/json.hh"
#include "engine/service.hh"
#include "obs/obs.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::engine;

std::unique_ptr<json::Value>
response(Engine &engine, const std::string &line,
         bool *shutdown = nullptr)
{
    std::string text = handleRequestLine(engine, line, shutdown);
    auto doc = json::parse(text);
    EXPECT_TRUE(doc && doc->isObject()) << text;
    return doc;
}

const std::string kMpSource = "name: wire_mp\n"
                              "thread t0 cta 0 gpu 0:\n"
                              "  st.global.u32 [x], 1\n"
                              "  st.release.gpu.u32 [f], 1\n"
                              "thread t1 cta 1 gpu 0:\n"
                              "  ld.acquire.gpu.u32 r0, [f]\n"
                              "  ld.global.u32 r1, [x]\n"
                              "require: !(t1.r0 == 1) || t1.r1 == 1\n";

std::string
jsonQuote(const std::string &text)
{
    return json::Value::makeString(text).dump();
}

TEST(Service, PingPongAndShutdown)
{
    Engine engine;
    auto pong = response(engine, "{\"cmd\":\"ping\",\"id\":7}");
    EXPECT_TRUE(pong->boolOr("ok", false));
    EXPECT_TRUE(pong->boolOr("pong", false));
    EXPECT_EQ(pong->uintOr("id", 0), 7u);

    bool shutdown = false;
    auto bye = response(engine, "{\"cmd\":\"shutdown\"}", &shutdown);
    EXPECT_TRUE(shutdown);
    EXPECT_TRUE(bye->boolOr("ok", false));
}

TEST(Service, MalformedRequestsGetErrorResponses)
{
    Engine engine;
    EXPECT_FALSE(response(engine, "not json")->boolOr("ok", true));
    EXPECT_FALSE(response(engine, "[1,2]")->boolOr("ok", true));
    EXPECT_FALSE(
        response(engine, "{\"cmd\":\"frobnicate\"}")->boolOr("ok", true));
    EXPECT_FALSE(response(engine, "{}")->boolOr("ok", true));

    auto unknown =
        response(engine, "{\"id\":3,\"test\":\"no_such_test\"}");
    EXPECT_FALSE(unknown->boolOr("ok", true));
    EXPECT_EQ(unknown->uintOr("id", 0), 3u);
    EXPECT_NE(unknown->stringOr("error", "").find("no_such_test"),
              std::string::npos);

    auto badSource =
        response(engine, "{\"litmus\":\"thread t0 oops\"}");
    EXPECT_FALSE(badSource->boolOr("ok", true));
}

TEST(Service, BuiltInTestCheckReportsCacheHits)
{
    Engine engine;
    const std::string line = "{\"test\":\"fig9_message_passing\"}";
    auto cold = response(engine, line);
    EXPECT_TRUE(cold->boolOr("ok", false));
    EXPECT_TRUE(cold->boolOr("passed", false));
    EXPECT_FALSE(cold->boolOr("cache_hit", true));
    EXPECT_NE(cold->stringOr("report", "").find("fig9_message_passing"),
              std::string::npos);

    auto warm = response(engine, line);
    EXPECT_TRUE(warm->boolOr("cache_hit", false));
    EXPECT_EQ(warm->stringOr("report", ""),
              cold->stringOr("report", ""));
}

TEST(Service, InlineLitmusSourceHitsAcrossSpellings)
{
    Engine engine;
    auto cold = response(engine, "{\"litmus\":" + jsonQuote(kMpSource) + "}");
    ASSERT_TRUE(cold->boolOr("ok", false));
    EXPECT_FALSE(cold->boolOr("cache_hit", true));

    // The same program with every identifier renamed is a cache hit
    // (the instruction decoder requires r-prefixed register names).
    std::string renamedSource = "name: wire_mp_renamed\n"
                                "thread alpha cta 0 gpu 0:\n"
                                "  st.global.u32 [data], 1\n"
                                "  st.release.gpu.u32 [flag], 1\n"
                                "thread beta cta 1 gpu 0:\n"
                                "  ld.acquire.gpu.u32 r7, [flag]\n"
                                "  ld.global.u32 r9, [data]\n"
                                "require: !(beta.r7 == 1) || beta.r9 == 1\n";
    auto warm =
        response(engine, "{\"litmus\":" + jsonQuote(renamedSource) + "}");
    ASSERT_TRUE(warm->boolOr("ok", false));
    EXPECT_TRUE(warm->boolOr("cache_hit", false));
    EXPECT_TRUE(warm->boolOr("passed", false));
    // Each report speaks its request's own namespace.
    EXPECT_NE(warm->stringOr("report", "").find("beta.r7"),
              std::string::npos);
}

TEST(Service, ModeAndOptionKnobsAreHonored)
{
    Engine engine;
    auto ptx60 = response(
        engine, "{\"test\":\"fig9_message_passing\",\"mode\":\"ptx60\"}");
    EXPECT_TRUE(ptx60->boolOr("ok", false));
    EXPECT_NE(ptx60->stringOr("report", "").find("[ptx60]"),
              std::string::npos);

    auto bad = response(
        engine, "{\"test\":\"fig9_message_passing\",\"mode\":\"ptx99\"}");
    EXPECT_FALSE(bad->boolOr("ok", true));

    auto witness = response(
        engine,
        "{\"test\":\"fig9_message_passing\",\"witness\":true}");
    EXPECT_TRUE(witness->boolOr("ok", false));
    EXPECT_FALSE(witness->boolOr("cache_hit", true));
}

TEST(Service, ServeStreamsResponsesInRequestOrder)
{
    Engine engine;
    std::istringstream in("{\"cmd\":\"ping\",\"id\":0}\n"
                          "{\"test\":\"fig9_message_passing\",\"id\":1}\n"
                          "{\"test\":\"fig9_message_passing\",\"id\":2}\n"
                          "{\"cmd\":\"ping\",\"id\":3}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.jobs = 4;
    EXPECT_EQ(serve(engine, options, in, out, err), 0);
    EXPECT_EQ(err.str(), "");

    std::vector<std::string> lines;
    std::istringstream reader(out.str());
    for (std::string line; std::getline(reader, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    for (std::size_t i = 0; i < lines.size(); i++) {
        auto doc = json::parse(lines[i]);
        ASSERT_TRUE(doc) << lines[i];
        EXPECT_EQ(doc->uintOr("id", 99), i) << lines[i];
        EXPECT_TRUE(doc->boolOr("ok", false));
    }
    // Identical requests coalesce: exactly one computes the verdict
    // and the other reports the hit — but either may have run first,
    // so only the hit *count* is deterministic.
    auto first = json::parse(lines[1]);
    auto second = json::parse(lines[2]);
    EXPECT_NE(first->boolOr("cache_hit", false),
              second->boolOr("cache_hit", true));
}

TEST(Service, ShutdownStopsTheStreamEarly)
{
    Engine engine;
    std::istringstream in("{\"cmd\":\"shutdown\",\"id\":0}\n");
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    EXPECT_EQ(serve(engine, options, in, out, err), 0);
    auto doc = json::parse(out.str().substr(0, out.str().find('\n')));
    ASSERT_TRUE(doc);
    EXPECT_TRUE(doc->boolOr("shutdown", false));
}

TEST(Service, RequestMetricsMergeIntoTheParentSession)
{
    Engine engine;
    obs::Session parent;
    parent.enable();
    {
        std::istringstream in(
            "{\"test\":\"fig9_message_passing\"}\n"
            "{\"test\":\"fig9_message_passing\"}\n"
            "{\"test\":\"fig9_message_passing\"}\n");
        std::ostringstream out;
        std::ostringstream err;
        ServeOptions options;
        options.jobs = 2;
        options.session = &parent;
        EXPECT_EQ(serve(engine, options, in, out, err), 0);
    }
    parent.disable();
    EXPECT_EQ(parent.metrics.counter("engine.cache.miss"), 1u);
    EXPECT_EQ(parent.metrics.counter("engine.cache.hit"), 2u);
    EXPECT_GE(parent.metrics.timer("engine.request").count, 3u);
}

} // namespace
