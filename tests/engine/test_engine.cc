/**
 * @file
 * Tests for engine::Engine::submit(): cache hits across repeated and
 * renamed requests, namespace translation of cached outcomes,
 * assertion re-evaluation on hits, witness bypass, model comparison,
 * lint routing, and warm/cold report identity.
 */

#include <filesystem>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "engine/canonical.hh"
#include "engine/engine.hh"
#include "litmus/registry.hh"
#include "litmus/test.hh"

#include "rename.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::engine;
using namespace mixedproxy::engine_tests;

litmus::LitmusTest
messagePassing(const char *name = "mp")
{
    return litmus::LitmusBuilder(name)
        .thread("t0", 0, 0,
                {"st.global.u32 [x], 1", "st.release.gpu.u32 [f], 1"})
        .thread("t1", 1, 0,
                {"ld.acquire.gpu.u32 r0, [f]", "ld.global.u32 r1, [x]"})
        .require("!(t1.r0 == 1) || t1.r1 == 1")
        .build();
}

TEST(Engine, RepeatedSubmitHitsTheCache)
{
    Engine engine;
    Request request = Request::forCheck(messagePassing());

    Verdict cold = engine.submit(request);
    EXPECT_FALSE(cold.cacheHit);
    Verdict warm = engine.submit(request);
    EXPECT_TRUE(warm.cacheHit);

    EXPECT_EQ(warm.check.outcomes, cold.check.outcomes);
    EXPECT_EQ(warm.passed(), cold.passed());
    // The warm report must be byte-identical to the cold one.
    EXPECT_EQ(renderReport(request, warm),
              renderReport(request, cold));
}

TEST(Engine, RenamedTestHitsAndSpeaksItsOwnNamespace)
{
    Engine engine;
    litmus::LitmusTest original = messagePassing();
    RenamePlan plan = freshNamePlan(original, true);
    litmus::LitmusTest variant = applyRename(original, plan);
    ASSERT_EQ(canonicalKey(original), canonicalKey(variant));

    Verdict cold = engine.submit(Request::forCheck(original));
    EXPECT_FALSE(cold.cacheHit);

    Verdict warm = engine.submit(Request::forCheck(variant));
    EXPECT_TRUE(warm.cacheHit);

    // Outcomes are translated into the variant's own names...
    ASSERT_FALSE(warm.check.outcomes.empty());
    for (const litmus::Outcome &outcome : warm.check.outcomes) {
        for (const auto &[reg, value] : outcome.registers)
            EXPECT_EQ(reg.find("zzthread"), 0u) << reg;
        for (const auto &[loc, value] : outcome.memory)
            EXPECT_EQ(loc.find("zzaddr"), 0u) << loc;
    }
    // ...and the variant's own (rewritten) assertions are evaluated.
    ASSERT_EQ(warm.check.assertions.size(), 1u);
    EXPECT_TRUE(warm.check.assertions[0].passed);
    EXPECT_TRUE(warm.passed());

    // The outcome sets agree modulo the rename maps.
    CanonicalForm formA = canonicalize(original);
    CanonicalForm formB = canonicalize(variant);
    std::set<litmus::Outcome> a;
    for (const litmus::Outcome &outcome : cold.check.outcomes)
        a.insert(formA.toCanonical(outcome));
    std::set<litmus::Outcome> b;
    for (const litmus::Outcome &outcome : warm.check.outcomes)
        b.insert(formB.toCanonical(outcome));
    EXPECT_EQ(a, b);
}

TEST(Engine, AssertionsAreReevaluatedPerRequestOnHits)
{
    Engine engine;
    // Same program, opposite assertions: the second request must get
    // its own verdict from the shared cached enumeration.
    litmus::LitmusTest requiring = messagePassing("mp_requires");
    litmus::LitmusTest forbids =
        litmus::LitmusBuilder("mp_forbids")
            .thread("t0", 0, 0,
                    {"st.global.u32 [x], 1",
                     "st.release.gpu.u32 [f], 1"})
            .thread("t1", 1, 0,
                    {"ld.acquire.gpu.u32 r0, [f]",
                     "ld.global.u32 r1, [x]"})
            .forbid("t1.r0 == 0") // admitted => must fail
            .build();

    Verdict first = engine.submit(Request::forCheck(requiring));
    EXPECT_FALSE(first.cacheHit);
    EXPECT_TRUE(first.passed());

    Verdict second = engine.submit(Request::forCheck(forbids));
    EXPECT_TRUE(second.cacheHit);
    EXPECT_FALSE(second.passed());
}

TEST(Engine, WitnessRequestsBypassTheCache)
{
    Engine engine;
    Request plain = Request::forCheck(messagePassing());
    engine.submit(plain);

    Request withWitnesses = Request::forCheck(messagePassing());
    withWitnesses.check.showWitnesses = true;
    Verdict verdict = engine.submit(withWitnesses);
    EXPECT_FALSE(verdict.cacheHit);
    EXPECT_FALSE(verdict.check.witnesses.empty());

    Request withDot = Request::forCheck(messagePassing());
    withDot.check.dot = true;
    EXPECT_FALSE(engine.submit(withDot).cacheHit);
}

TEST(Engine, ModeChangeMissesTheCache)
{
    Engine engine;
    Request ptx75 = Request::forCheck(messagePassing());
    engine.submit(ptx75);

    Request ptx60 = Request::forCheck(messagePassing());
    ptx60.check.mode = model::ProxyMode::Ptx60;
    EXPECT_FALSE(engine.submit(ptx60).cacheHit);
    EXPECT_TRUE(engine.submit(ptx60).cacheHit);
}

TEST(Engine, ComparisonIsTwoCacheLookups)
{
    Engine engine;
    Request compare = Request::forCheck(messagePassing());
    compare.check.compareModels = true;

    Verdict cold = engine.submit(compare);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_FALSE(cold.comparisonCacheHit);
    ASSERT_TRUE(cold.comparison.has_value());

    Verdict warm = engine.submit(compare);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_TRUE(warm.comparisonCacheHit);
    EXPECT_EQ(warm.comparison->outcomes, cold.comparison->outcomes);
    EXPECT_EQ(renderReport(compare, warm), renderReport(compare, cold));
}

TEST(Engine, DisabledCacheNeverHits)
{
    EngineConfig config;
    config.cacheEnabled = false;
    Engine engine(config);
    Request request = Request::forCheck(messagePassing());
    EXPECT_FALSE(engine.submit(request).cacheHit);
    EXPECT_FALSE(engine.submit(request).cacheHit);
    EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(Engine, LintOnlyRequestSkipsChecking)
{
    Engine engine;
    Verdict verdict = engine.submit(Request::forLint(messagePassing()));
    ASSERT_TRUE(verdict.lint.has_value());
    EXPECT_TRUE(verdict.check.outcomes.empty());
    EXPECT_FALSE(verdict.cacheHit);
}

TEST(Engine, SimulationRidesAlongUncached)
{
    Engine engine;
    Request request = Request::forCheck(messagePassing());
    request.sim.enabled = true;
    request.sim.iterations = 50;
    Verdict verdict = engine.submit(request);
    ASSERT_TRUE(verdict.sim.has_value());
    // The check half still participates in the cache.
    EXPECT_TRUE(engine.submit(request).cacheHit);
}

TEST(Engine, ColdAndWarmReportsAcrossTheCorpusAreIdentical)
{
    Engine engine;
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        Request request = Request::forCheck(test);
        Verdict cold = engine.submit(request);
        Verdict warm = engine.submit(request);
        EXPECT_TRUE(warm.cacheHit) << test.name();
        EXPECT_EQ(renderReport(request, warm),
                  renderReport(request, cold))
            << test.name();
    }
}

TEST(Engine, ProcessEngineIsASingleton)
{
    EXPECT_EQ(&processEngine(), &processEngine());
}

} // namespace
