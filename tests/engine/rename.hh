/**
 * @file
 * Test-local helpers that produce renamed-but-isomorphic variants of a
 * litmus test: thread permutation, thread renaming, virtual-address
 * renaming, and per-thread register renaming (with the assertion text
 * rewritten to match). The canonical-key golden suite asserts
 * engine::canonicalKey() is invariant under exactly these relabelings.
 */

#ifndef MIXEDPROXY_TESTS_ENGINE_RENAME_HH
#define MIXEDPROXY_TESTS_ENGINE_RENAME_HH

#include <algorithm>
#include <cctype>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "litmus/test.hh"

namespace mixedproxy::engine_tests {

/** Per-test rename plan; identity when a map lacks an entry. */
struct RenamePlan
{
    /** New declaration order, as indices into test.threads(). */
    std::vector<std::size_t> threadOrder;

    /** Original thread name -> new thread name. */
    std::map<std::string, std::string> threads;

    /** Original virtual address -> new virtual address. */
    std::map<std::string, std::string> addresses;

    /** Per original thread name: original register -> new register. */
    std::map<std::string, std::map<std::string, std::string>> registers;
};

inline std::string
renamed(const std::map<std::string, std::string> &map,
        const std::string &name)
{
    auto it = map.find(name);
    return it == map.end() ? name : it->second;
}

/**
 * Rewrite the register/address identifiers of an assertion condition:
 * "thr.reg" pairs through the thread + per-thread register maps,
 * "[addr]" memory references through the address map.
 */
inline std::string
rewriteCondition(const std::string &text, const RenamePlan &plan)
{
    auto isIdent = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    std::string out;
    std::size_t i = 0;
    while (i < text.size()) {
        if (text[i] == '[') {
            std::size_t j = i + 1;
            while (j < text.size() && isIdent(text[j]))
                j++;
            if (j < text.size() && text[j] == ']' && j > i + 1) {
                out += '[';
                out += renamed(plan.addresses,
                               text.substr(i + 1, j - i - 1));
                out += ']';
                i = j + 1;
                continue;
            }
        }
        if (isIdent(text[i]) &&
            !std::isdigit(static_cast<unsigned char>(text[i]))) {
            std::size_t j = i;
            while (j < text.size() && isIdent(text[j]))
                j++;
            std::string first = text.substr(i, j - i);
            if (j < text.size() && text[j] == '.') {
                std::size_t k = j + 1;
                while (k < text.size() && isIdent(text[k]))
                    k++;
                std::string second = text.substr(j + 1, k - j - 1);
                const auto regs = plan.registers.find(first);
                if (regs != plan.registers.end())
                    second = renamed(regs->second, second);
                out += renamed(plan.threads, first);
                out += '.';
                out += second;
                i = k;
                continue;
            }
            out += first;
            i = j;
            continue;
        }
        out += text[i++];
    }
    return out;
}

/** Apply @p plan to @p test, producing an isomorphic variant. */
inline litmus::LitmusTest
applyRename(const litmus::LitmusTest &test, const RenamePlan &plan)
{
    litmus::LitmusTest out(test.name() + "_renamed");

    std::vector<std::size_t> order = plan.threadOrder;
    if (order.empty()) {
        order.resize(test.threads().size());
        std::iota(order.begin(), order.end(), 0);
    }

    for (std::size_t index : order) {
        litmus::Thread thread = test.threads()[index];
        const auto regsIt = plan.registers.find(thread.name);
        const std::map<std::string, std::string> empty;
        const auto &regs =
            regsIt == plan.registers.end() ? empty : regsIt->second;
        for (litmus::Instruction &inst : thread.instructions) {
            inst.address = renamed(plan.addresses, inst.address);
            inst.srcAddress = renamed(plan.addresses, inst.srcAddress);
            for (std::string &coord : inst.addressCoordRegs)
                coord = renamed(regs, coord);
            inst.destReg = renamed(regs, inst.destReg);
            if (inst.value.isReg())
                inst.value.reg = renamed(regs, inst.value.reg);
            if (inst.expected.isReg())
                inst.expected.reg = renamed(regs, inst.expected.reg);
            inst.text = inst.toString();
        }
        thread.name = renamed(plan.threads, thread.name);
        out.addThread(std::move(thread));
    }

    for (const std::string &location : test.locations()) {
        for (const std::string &va : test.addressesOf(location)) {
            if (va != location)
                out.addAlias(renamed(plan.addresses, va),
                             renamed(plan.addresses, location));
        }
        out.setInit(renamed(plan.addresses, location),
                    test.initOf(location));
    }

    for (const litmus::Assertion &assertion : test.assertions())
        out.addAssertion(assertion.kind,
                         rewriteCondition(assertion.text, plan));

    out.validate();
    return out;
}

/** A plan renaming every thread, register, and address to fresh names
 *  (and optionally permuting declaration order). */
inline RenamePlan
freshNamePlan(const litmus::LitmusTest &test, bool reverseThreads)
{
    RenamePlan plan;
    plan.threadOrder.resize(test.threads().size());
    std::iota(plan.threadOrder.begin(), plan.threadOrder.end(), 0);
    if (reverseThreads)
        std::reverse(plan.threadOrder.begin(), plan.threadOrder.end());

    std::size_t threadCounter = 0;
    for (const litmus::Thread &thread : test.threads()) {
        plan.threads[thread.name] =
            "zzthread" + std::to_string(threadCounter++);
        auto &regs = plan.registers[thread.name];
        for (const litmus::Instruction &inst : thread.instructions) {
            auto fresh = [&](const std::string &reg) {
                if (!reg.empty() && !regs.count(reg))
                    regs[reg] = "zzreg" + std::to_string(regs.size());
            };
            fresh(inst.destReg);
            if (inst.value.isReg())
                fresh(inst.value.reg);
            if (inst.expected.isReg())
                fresh(inst.expected.reg);
            for (const std::string &coord : inst.addressCoordRegs)
                fresh(coord);
        }
    }

    std::size_t addressCounter = 0;
    for (const std::string &location : test.locations())
        for (const std::string &va : test.addressesOf(location))
            plan.addresses[va] =
                "zzaddr" + std::to_string(addressCounter++);
    return plan;
}

} // namespace mixedproxy::engine_tests

#endif // MIXEDPROXY_TESTS_ENGINE_RENAME_HH
