/**
 * @file
 * Tests for the two-tier verdict cache: LRU behavior, fingerprint
 * sensitivity, in-flight coalescing, disk round trips, and the
 * collision guard on disk entries.
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cache.hh"
#include "obs/obs.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::engine;

CachedVerdict
sampleVerdict(std::uint64_t seed)
{
    CachedVerdict verdict;
    litmus::Outcome outcome;
    outcome.registers["t0.r0"] = seed;
    outcome.registers["t1.r1"] = seed + 1;
    outcome.memory["m0"] = 42;
    verdict.outcomes.insert(outcome);
    litmus::Outcome other;
    other.registers["t0.r0"] = 0;
    verdict.outcomes.insert(other);
    verdict.budgetExceeded = (seed % 2) == 1;
    verdict.stats.rfAssignments = seed * 3;
    verdict.stats.candidateExecutions = seed * 5;
    verdict.stats.consistentExecutions = seed;
    verdict.stats.fastPathHits = 1;
    verdict.stats.fixpointIterations = 7;
    verdict.stats.causeEdges = 12345678901234ull;
    verdict.stats.layerBaseReuse = seed * 2;
    verdict.stats.layerRfDelta = seed * 9;
    verdict.stats.layerRfPrefixReject = 3;
    verdict.stats.layerCoPrefixReject = 4;
    return verdict;
}

/** RAII temp directory under the system temp root. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("mp_cache_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    static inline std::atomic<int> counter{0};
};

TEST(Sha256, MatchesKnownVectors)
{
    // FIPS 180-4 test vectors.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhi"
                        "jkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Fingerprint, SeparatesEveryKnob)
{
    const std::string key = "ck1|some-canonical-program";
    const std::string base = VerdictCache::fingerprint(
        key, model::ProxyMode::Ptx75, true, 1000);
    EXPECT_NE(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx60, true, 1000));
    EXPECT_NE(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, false, 1000));
    EXPECT_NE(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1001));
    EXPECT_NE(base, VerdictCache::fingerprint(
                        "ck1|other", model::ProxyMode::Ptx75, true,
                        1000));
    EXPECT_NE(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1000,
                        model::PresolvePolicy::On));
    EXPECT_NE(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1000,
                        model::PresolvePolicy::Only));
    EXPECT_NE(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1000,
                        model::PresolvePolicy::Off,
                        model::EnumCore::Legacy));
    EXPECT_EQ(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1000));
    EXPECT_EQ(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1000,
                        model::PresolvePolicy::Off));
    EXPECT_EQ(base, VerdictCache::fingerprint(
                        key, model::ProxyMode::Ptx75, true, 1000,
                        model::PresolvePolicy::Off,
                        model::EnumCore::Incremental));
}

TEST(VerdictCache, MissComputesThenHits)
{
    VerdictCache cache;
    int computations = 0;
    auto compute = [&] {
        computations++;
        return sampleVerdict(3);
    };

    bool hit = true;
    CachedVerdict first = cache.lookupOrCompute("k", compute, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(cache.size(), 1u);

    CachedVerdict second = cache.lookupOrCompute("k", compute, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(second.outcomes, first.outcomes);
    EXPECT_EQ(second.budgetExceeded, first.budgetExceeded);
    EXPECT_EQ(second.stats.candidateExecutions,
              first.stats.candidateExecutions);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.lookupOrCompute("k", compute, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(computations, 2);
}

TEST(VerdictCache, EvictsLeastRecentlyUsed)
{
    VerdictCache::Config config;
    config.capacity = 2;
    VerdictCache cache(config);

    auto computeFor = [](std::uint64_t seed) {
        return [seed] { return sampleVerdict(seed); };
    };
    cache.lookupOrCompute("a", computeFor(1));
    cache.lookupOrCompute("b", computeFor(2));
    // Touch "a" so "b" is the LRU entry, then insert "c".
    bool hit = false;
    cache.lookupOrCompute("a", computeFor(1), &hit);
    EXPECT_TRUE(hit);
    cache.lookupOrCompute("c", computeFor(3));
    EXPECT_EQ(cache.size(), 2u);

    cache.lookupOrCompute("a", computeFor(1), &hit);
    EXPECT_TRUE(hit); // survived
    cache.lookupOrCompute("b", computeFor(2), &hit);
    EXPECT_FALSE(hit); // evicted
}

TEST(VerdictCache, CapacityZeroDisablesMemoization)
{
    VerdictCache::Config config;
    config.capacity = 0;
    VerdictCache cache(config);
    int computations = 0;
    auto compute = [&] {
        computations++;
        return sampleVerdict(1);
    };
    bool hit = true;
    cache.lookupOrCompute("k", compute, &hit);
    EXPECT_FALSE(hit);
    cache.lookupOrCompute("k", compute, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(computations, 2);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(VerdictCache, ComputeExceptionReleasesInFlightMarker)
{
    VerdictCache cache;
    EXPECT_THROW(cache.lookupOrCompute(
                     "k",
                     []() -> CachedVerdict {
                         throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The key must not be wedged as pending: a later lookup computes.
    bool hit = true;
    cache.lookupOrCompute(
        "k", [] { return sampleVerdict(1); }, &hit);
    EXPECT_FALSE(hit);
    cache.lookupOrCompute(
        "k", [] { return sampleVerdict(1); }, &hit);
    EXPECT_TRUE(hit);
}

TEST(VerdictCache, CoalescesConcurrentDuplicates)
{
    VerdictCache cache;
    std::atomic<int> computations{0};
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<int> hits(kThreads, -1);
    for (int i = 0; i < kThreads; i++) {
        threads.emplace_back([&, i] {
            bool hit = false;
            cache.lookupOrCompute(
                "k",
                [&] {
                    computations++;
                    // Widen the race window so duplicates pile up.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    return sampleVerdict(1);
                },
                &hit);
            hits[static_cast<std::size_t>(i)] = hit ? 1 : 0;
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(computations.load(), 1);
    int hitCount = 0;
    for (int h : hits)
        hitCount += h;
    EXPECT_EQ(hitCount, kThreads - 1);
}

TEST(VerdictCache, CountersFlowIntoBoundSession)
{
    obs::Session session;
    session.enable();
    {
        obs::ScopedSession bind(&session);
        VerdictCache cache;
        cache.lookupOrCompute("a", [] { return sampleVerdict(1); });
        cache.lookupOrCompute("a", [] { return sampleVerdict(1); });
        cache.lookupOrCompute("b", [] { return sampleVerdict(2); });
    }
    session.disable();
    EXPECT_EQ(session.metrics.counter("engine.cache.miss"), 2u);
    EXPECT_EQ(session.metrics.counter("engine.cache.hit"), 1u);
}

TEST(VerdictEntry, EncodeDecodeRoundTrips)
{
    const std::string key = "fp1|mode=0|fast=1|budget=100|ck1|prog";
    CachedVerdict verdict = sampleVerdict(9);
    const std::string text = encodeVerdictEntry(key, verdict);

    CachedVerdict decoded;
    ASSERT_TRUE(decodeVerdictEntry(text, key, decoded));
    EXPECT_EQ(decoded.outcomes, verdict.outcomes);
    EXPECT_EQ(decoded.budgetExceeded, verdict.budgetExceeded);
    EXPECT_EQ(decoded.stats.rfAssignments, verdict.stats.rfAssignments);
    EXPECT_EQ(decoded.stats.candidateExecutions,
              verdict.stats.candidateExecutions);
    EXPECT_EQ(decoded.stats.consistentExecutions,
              verdict.stats.consistentExecutions);
    EXPECT_EQ(decoded.stats.fastPathHits, verdict.stats.fastPathHits);
    EXPECT_EQ(decoded.stats.fixpointIterations,
              verdict.stats.fixpointIterations);
    EXPECT_EQ(decoded.stats.causeEdges, verdict.stats.causeEdges);
    EXPECT_EQ(decoded.stats.layerBaseReuse,
              verdict.stats.layerBaseReuse);
    EXPECT_EQ(decoded.stats.layerRfDelta, verdict.stats.layerRfDelta);
    EXPECT_EQ(decoded.stats.layerRfPrefixReject,
              verdict.stats.layerRfPrefixReject);
    EXPECT_EQ(decoded.stats.layerCoPrefixReject,
              verdict.stats.layerCoPrefixReject);
}

TEST(VerdictEntry, EmbeddedKeyGuardsAgainstCollisions)
{
    CachedVerdict verdict = sampleVerdict(1);
    const std::string text = encodeVerdictEntry("key-a", verdict);
    CachedVerdict decoded;
    // A file whose embedded key disagrees (a SHA collision, or a
    // foreign file dropped into the cache dir) must decode as a miss.
    EXPECT_FALSE(decodeVerdictEntry(text, "key-b", decoded));
    EXPECT_TRUE(decodeVerdictEntry(text, "key-a", decoded));
    EXPECT_FALSE(decodeVerdictEntry("not json", "key-a", decoded));
    EXPECT_FALSE(decodeVerdictEntry("{}", "key-a", decoded));
}

TEST(VerdictCache, DiskStoreSurvivesTheProcessBoundary)
{
    TempDir dir;
    VerdictCache::Config config;
    config.diskDir = dir.path.string();

    int computations = 0;
    auto compute = [&] {
        computations++;
        return sampleVerdict(4);
    };
    CachedVerdict cold;
    {
        VerdictCache cache(config);
        cold = cache.lookupOrCompute("k", compute);
    }
    EXPECT_EQ(computations, 1);

    // A different instance (a "new process") finds the entry on disk.
    VerdictCache warm(config);
    bool hit = false;
    CachedVerdict reloaded = warm.lookupOrCompute("k", compute, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(reloaded.outcomes, cold.outcomes);
    EXPECT_EQ(reloaded.budgetExceeded, cold.budgetExceeded);
    EXPECT_EQ(reloaded.stats.candidateExecutions,
              cold.stats.candidateExecutions);

    // Exactly one entry file, named by the key's SHA-256.
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        EXPECT_EQ(entry.path().filename().string(),
                  sha256Hex("k") + ".json");
        files++;
    }
    EXPECT_EQ(files, 1u);
}

TEST(VerdictCache, CorruptDiskEntryDegradesToAMiss)
{
    TempDir dir;
    VerdictCache::Config config;
    config.diskDir = dir.path.string();
    {
        std::ofstream out(dir.path / (sha256Hex("k") + ".json"));
        out << "corrupted bytes";
    }
    VerdictCache cache(config);
    int computations = 0;
    bool hit = true;
    cache.lookupOrCompute(
        "k",
        [&] {
            computations++;
            return sampleVerdict(2);
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(computations, 1);
}

} // namespace
