/**
 * @file
 * Unit tests for relation::Relation, including property-style sweeps of
 * the closure and composition operators.
 */

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "relation/error.hh"
#include "relation/relation.hh"

namespace {

using mixedproxy::PanicError;
using mixedproxy::relation::EventId;
using mixedproxy::relation::EventSet;
using mixedproxy::relation::forEachTotalOrder;
using mixedproxy::relation::Relation;

TEST(Relation, EmptyOnConstruction)
{
    Relation r(5);
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.pairCount(), 0u);
    EXPECT_TRUE(r.irreflexive());
    EXPECT_TRUE(r.acyclic());
    EXPECT_TRUE(r.transitive());
}

TEST(Relation, InsertContainsErase)
{
    Relation r(70);
    r.insert(0, 69);
    r.insert(69, 0);
    EXPECT_TRUE(r.contains(0, 69));
    EXPECT_TRUE(r.contains(69, 0));
    EXPECT_FALSE(r.contains(0, 0));
    r.erase(0, 69);
    EXPECT_FALSE(r.contains(0, 69));
    EXPECT_EQ(r.pairCount(), 1u);
}

TEST(Relation, Identity)
{
    Relation id = Relation::identity(4);
    EXPECT_EQ(id.pairCount(), 4u);
    EXPECT_TRUE(id.contains(2, 2));
    EXPECT_FALSE(id.irreflexive());
}

TEST(Relation, Algebra)
{
    Relation a(4, {{0, 1}, {1, 2}});
    Relation b(4, {{1, 2}, {2, 3}});
    EXPECT_EQ((a | b), Relation(4, {{0, 1}, {1, 2}, {2, 3}}));
    EXPECT_EQ((a & b), Relation(4, {{1, 2}}));
    EXPECT_EQ((a - b), Relation(4, {{0, 1}}));
}

TEST(Relation, Compose)
{
    Relation a(4, {{0, 1}, {2, 3}});
    Relation b(4, {{1, 2}, {3, 0}});
    EXPECT_EQ(a.compose(b), Relation(4, {{0, 2}, {2, 0}}));
}

TEST(Relation, ComposeWithIdentityIsNoop)
{
    Relation a(5, {{0, 1}, {1, 2}, {4, 0}});
    EXPECT_EQ(a.compose(Relation::identity(5)), a);
    EXPECT_EQ(Relation::identity(5).compose(a), a);
}

TEST(Relation, Inverse)
{
    Relation a(3, {{0, 1}, {1, 2}});
    EXPECT_EQ(a.inverse(), Relation(3, {{1, 0}, {2, 1}}));
    EXPECT_EQ(a.inverse().inverse(), a);
}

TEST(Relation, TransitiveClosureChain)
{
    Relation r(4, {{0, 1}, {1, 2}, {2, 3}});
    Relation tc = r.transitiveClosure();
    EXPECT_TRUE(tc.contains(0, 3));
    EXPECT_TRUE(tc.contains(0, 2));
    EXPECT_TRUE(tc.contains(1, 3));
    EXPECT_FALSE(tc.contains(3, 0));
    EXPECT_TRUE(tc.transitive());
}

TEST(Relation, TransitiveClosureCycle)
{
    Relation r(3, {{0, 1}, {1, 2}, {2, 0}});
    Relation tc = r.transitiveClosure();
    EXPECT_TRUE(tc.contains(0, 0));
    EXPECT_FALSE(tc.irreflexive());
    EXPECT_FALSE(r.acyclic());
}

TEST(Relation, ReflexiveTransitiveClosure)
{
    Relation r(3, {{0, 1}});
    Relation rtc = r.reflexiveTransitiveClosure();
    EXPECT_TRUE(rtc.contains(0, 0));
    EXPECT_TRUE(rtc.contains(2, 2));
    EXPECT_TRUE(rtc.contains(0, 1));
}

TEST(Relation, AcyclicOnDags)
{
    Relation dag(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
    EXPECT_TRUE(dag.acyclic());
    dag.insert(4, 0);
    EXPECT_FALSE(dag.acyclic());
}

TEST(Relation, SelfLoopIsCycle)
{
    Relation r(2, {{1, 1}});
    EXPECT_FALSE(r.acyclic());
    EXPECT_FALSE(r.irreflexive());
}

TEST(Relation, RestrictOperators)
{
    Relation r(4, {{0, 1}, {1, 2}, {2, 3}});
    EventSet s(4, {1, 2});
    EXPECT_EQ(r.restrict(s), Relation(4, {{1, 2}}));
    EXPECT_EQ(r.restrictDomain(s), Relation(4, {{1, 2}, {2, 3}}));
    EXPECT_EQ(r.restrictRange(s), Relation(4, {{0, 1}, {1, 2}}));
}

TEST(Relation, DomainRangeSuccessors)
{
    Relation r(5, {{0, 2}, {0, 3}, {4, 3}});
    EXPECT_EQ(r.domain(), EventSet(5, {0, 4}));
    EXPECT_EQ(r.range(), EventSet(5, {2, 3}));
    EXPECT_EQ(r.successors(0), EventSet(5, {2, 3}));
    EXPECT_EQ(r.predecessors(3), EventSet(5, {0, 4}));
}

TEST(Relation, Product)
{
    Relation r = Relation::product(EventSet(3, {0}), EventSet(3, {1, 2}));
    EXPECT_EQ(r, Relation(3, {{0, 1}, {0, 2}}));
}

TEST(Relation, FromPredicate)
{
    Relation lt = Relation::fromPredicate(
        4, [](EventId a, EventId b) { return a < b; });
    EXPECT_EQ(lt.pairCount(), 6u);
    EXPECT_TRUE(lt.acyclic());
    EXPECT_TRUE(lt.totalOn(EventSet::full(4)));
}

TEST(Relation, TotalOn)
{
    Relation r(3, {{0, 1}, {1, 2}});
    EXPECT_FALSE(r.totalOn(EventSet::full(3))); // 0 vs 2 unrelated
    r.insert(0, 2);
    EXPECT_TRUE(r.totalOn(EventSet::full(3)));
}

TEST(Relation, FindPath)
{
    Relation r(5, {{0, 1}, {1, 2}, {2, 3}});
    auto path = r.findPath(0, 3);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (std::vector<EventId>{1, 2}));
    EXPECT_FALSE(r.findPath(3, 0).has_value());
    auto direct = r.findPath(0, 1);
    ASSERT_TRUE(direct.has_value());
    EXPECT_TRUE(direct->empty());
}

TEST(Relation, TopologicalOrderRespectsEdges)
{
    Relation r(5, {{0, 1}, {1, 2}, {3, 2}});
    auto order = r.topologicalOrder(EventSet::full(5));
    ASSERT_TRUE(order.has_value());
    auto pos = [&](EventId id) {
        return std::find(order->begin(), order->end(), id) -
               order->begin();
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(1), pos(2));
    EXPECT_LT(pos(3), pos(2));
}

TEST(Relation, TopologicalOrderOnCycleFails)
{
    Relation r(3, {{0, 1}, {1, 0}});
    EXPECT_FALSE(r.topologicalOrder(EventSet::full(3)).has_value());
}

TEST(Relation, UniverseMismatchPanics)
{
    Relation a(3);
    Relation b(4);
    EXPECT_THROW(a | b, PanicError);
    EXPECT_THROW(a.compose(b), PanicError);
}

TEST(TotalOrderEnumeration, UnconstrainedIsFactorial)
{
    EventSet s(4, {0, 1, 2});
    std::size_t count = 0;
    forEachTotalOrder(s, Relation(4), [&](const auto &) {
        count++;
        return true;
    });
    EXPECT_EQ(count, 6u);
}

TEST(TotalOrderEnumeration, RespectsPartialOrder)
{
    EventSet s(3, {0, 1, 2});
    Relation partial(3, {{0, 1}});
    std::size_t count = 0;
    forEachTotalOrder(s, partial, [&](const std::vector<EventId> &order) {
        auto p0 = std::find(order.begin(), order.end(), 0);
        auto p1 = std::find(order.begin(), order.end(), 1);
        EXPECT_LT(p0 - order.begin(), p1 - order.begin());
        count++;
        return true;
    });
    EXPECT_EQ(count, 3u);
}

TEST(TotalOrderEnumeration, CyclicConstraintYieldsNothing)
{
    EventSet s(2, {0, 1});
    Relation partial(2, {{0, 1}, {1, 0}});
    std::size_t count = 0;
    forEachTotalOrder(s, partial, [&](const auto &) {
        count++;
        return true;
    });
    EXPECT_EQ(count, 0u);
}

TEST(TotalOrderEnumeration, EmptySubsetVisitsOnce)
{
    std::size_t count = 0;
    forEachTotalOrder(EventSet(3), Relation(3), [&](const auto &order) {
        EXPECT_TRUE(order.empty());
        count++;
        return true;
    });
    EXPECT_EQ(count, 1u);
}

TEST(TotalOrderEnumeration, EarlyAbort)
{
    EventSet s(4, {0, 1, 2, 3});
    std::size_t count = 0;
    bool completed = forEachTotalOrder(s, Relation(4), [&](const auto &) {
        count++;
        return count < 5;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 5u);
}

// Property sweep: closure is idempotent and monotone on random DAG-ish
// relations; compose distributes over union.
class RelationPropertyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RelationPropertyTest, ClosureIdempotentAndMonotone)
{
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<std::size_t> node(0, 9);
    Relation r(10);
    for (int i = 0; i < 15; i++)
        r.insert(node(rng), node(rng));

    Relation tc = r.transitiveClosure();
    EXPECT_EQ(tc.transitiveClosure(), tc);
    EXPECT_TRUE(r.subsetOf(tc));
    EXPECT_TRUE(tc.transitive());
}

TEST_P(RelationPropertyTest, ComposeDistributesOverUnion)
{
    std::mt19937 rng(GetParam() * 7919 + 13);
    std::uniform_int_distribution<std::size_t> node(0, 7);
    auto random_relation = [&]() {
        Relation r(8);
        for (int i = 0; i < 10; i++)
            r.insert(node(rng), node(rng));
        return r;
    };
    Relation a = random_relation();
    Relation b = random_relation();
    Relation c = random_relation();
    EXPECT_EQ(a.compose(b | c), a.compose(b) | a.compose(c));
    EXPECT_EQ((a | b).compose(c), a.compose(c) | b.compose(c));
}

TEST_P(RelationPropertyTest, InverseReversesCompose)
{
    std::mt19937 rng(GetParam() * 104729 + 1);
    std::uniform_int_distribution<std::size_t> node(0, 7);
    auto random_relation = [&]() {
        Relation r(8);
        for (int i = 0; i < 10; i++)
            r.insert(node(rng), node(rng));
        return r;
    };
    Relation a = random_relation();
    Relation b = random_relation();
    EXPECT_EQ(a.compose(b).inverse(), b.inverse().compose(a.inverse()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationPropertyTest,
                         ::testing::Range(0u, 20u));

} // namespace
