/**
 * @file
 * Randomized differential tests for the relation layer.
 *
 * Every word-level kernel operation and delta operation on Relation is
 * checked against a naive pair-set reference oracle over seeded random
 * relations. The oracle stores explicit (a, b) pairs in a std::set and
 * implements each operator by definition — no bit tricks, no sharing
 * with the production code — so any divergence flags a kernel bug.
 * Seeds are fixed; the suite is fully deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "relation/relation.hh"

namespace {

using mixedproxy::relation::EventId;
using mixedproxy::relation::EventSet;
using mixedproxy::relation::Relation;

using Pair = std::pair<EventId, EventId>;
using PairSet = std::set<Pair>;

/** Naive reference implementations, by definition. */
namespace oracle {

PairSet
unionOf(const PairSet &a, const PairSet &b)
{
    PairSet out = a;
    out.insert(b.begin(), b.end());
    return out;
}

PairSet
intersectOf(const PairSet &a, const PairSet &b)
{
    PairSet out;
    for (const auto &p : a) {
        if (b.count(p))
            out.insert(p);
    }
    return out;
}

PairSet
differenceOf(const PairSet &a, const PairSet &b)
{
    PairSet out;
    for (const auto &p : a) {
        if (!b.count(p))
            out.insert(p);
    }
    return out;
}

PairSet
composeOf(const PairSet &a, const PairSet &b)
{
    PairSet out;
    for (const auto &[x, m1] : a) {
        for (const auto &[m2, y] : b) {
            if (m1 == m2)
                out.insert({x, y});
        }
    }
    return out;
}

/** Irreflexive transitive closure by iterated composition. */
PairSet
closureOf(const PairSet &r)
{
    PairSet out = r;
    bool changed = true;
    while (changed) {
        changed = false;
        PairSet step = composeOf(out, r);
        for (const auto &p : step) {
            if (out.insert(p).second)
                changed = true;
        }
    }
    return out;
}

bool
acyclicOf(const PairSet &r)
{
    PairSet closed = closureOf(r);
    return std::none_of(closed.begin(), closed.end(), [](const Pair &p) {
        return p.first == p.second;
    });
}

PairSet
restrictOf(const PairSet &r, const std::set<EventId> &s)
{
    PairSet out;
    for (const auto &p : r) {
        if (s.count(p.first) && s.count(p.second))
            out.insert(p);
    }
    return out;
}

} // namespace oracle

/** Random relation with its mirrored pair set. */
struct Sample
{
    Relation rel;
    PairSet pairs;
};

Sample
randomRelation(std::mt19937 &rng, std::size_t n, double density)
{
    Sample s{Relation(n), {}};
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (EventId a = 0; a < n; a++) {
        for (EventId b = 0; b < n; b++) {
            if (coin(rng) < density) {
                s.rel.insert(a, b);
                s.pairs.insert({a, b});
            }
        }
    }
    return s;
}

PairSet
pairsOf(const Relation &r)
{
    PairSet out;
    r.forEach([&](EventId a, EventId b) { out.insert({a, b}); });
    return out;
}

/** Universe sizes crossing the one-word boundary (64 bits). */
const std::size_t kSizes[] = {1, 3, 7, 17, 33, 63, 64, 65, 100};

TEST(RelationDifferential, SetAlgebraMatchesOracle)
{
    std::mt19937 rng(0xA11CE5);
    for (std::size_t n : kSizes) {
        for (double density : {0.02, 0.15, 0.5}) {
            Sample a = randomRelation(rng, n, density);
            Sample b = randomRelation(rng, n, density);
            EXPECT_EQ(pairsOf(a.rel | b.rel),
                      oracle::unionOf(a.pairs, b.pairs));
            EXPECT_EQ(pairsOf(a.rel & b.rel),
                      oracle::intersectOf(a.pairs, b.pairs));
            EXPECT_EQ(pairsOf(a.rel - b.rel),
                      oracle::differenceOf(a.pairs, b.pairs));
            EXPECT_EQ(a.rel.empty(), a.pairs.empty());
            EXPECT_EQ(a.rel.pairCount(), a.pairs.size());
        }
    }
}

TEST(RelationDifferential, ComposeMatchesOracle)
{
    std::mt19937 rng(0xBEEF01);
    for (std::size_t n : kSizes) {
        Sample a = randomRelation(rng, n, 0.1);
        Sample b = randomRelation(rng, n, 0.1);
        EXPECT_EQ(pairsOf(a.rel.compose(b.rel)),
                  oracle::composeOf(a.pairs, b.pairs));
    }
}

TEST(RelationDifferential, ClosureMatchesOracle)
{
    std::mt19937 rng(0xC105ED);
    for (std::size_t n : kSizes) {
        for (double density : {0.02, 0.08, 0.3}) {
            Sample s = randomRelation(rng, n, density);
            EXPECT_EQ(pairsOf(s.rel.transitiveClosure()),
                      oracle::closureOf(s.pairs))
                << "n=" << n << " density=" << density;
        }
    }
}

TEST(RelationDifferential, AcyclicMatchesOracle)
{
    std::mt19937 rng(0xAC1C11);
    for (std::size_t n : kSizes) {
        // Sparse enough that both verdicts actually occur.
        for (double density : {0.01, 0.05, 0.2}) {
            Sample s = randomRelation(rng, n, density);
            EXPECT_EQ(s.rel.acyclic(), oracle::acyclicOf(s.pairs));
        }
    }
}

TEST(RelationDifferential, RestrictMatchesOracle)
{
    std::mt19937 rng(0x5E7EC7);
    for (std::size_t n : kSizes) {
        Sample s = randomRelation(rng, n, 0.2);
        EventSet keep(n);
        std::set<EventId> keep_ids;
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        for (EventId id = 0; id < n; id++) {
            if (coin(rng) < 0.5) {
                keep.insert(id);
                keep_ids.insert(id);
            }
        }
        EXPECT_EQ(pairsOf(s.rel.restrict(keep)),
                  oracle::restrictOf(s.pairs, keep_ids));
    }
}

TEST(RelationDifferential, InsertClosureMaintainsClosure)
{
    // Start from the closure of a random base, then stream random extra
    // edges through insertClosure; after every insert the result must be
    // bit-identical to recomputing the closure of base ∪ inserted from
    // scratch (the oracle and the from-scratch path double-check each
    // other).
    std::mt19937 rng(0xDE17A5);
    for (std::size_t n : {5UL, 12UL, 33UL, 65UL}) {
        Sample base = randomRelation(rng, n, 0.05);
        Relation closed = base.rel.transitiveClosure();
        PairSet edges = base.pairs;
        std::uniform_int_distribution<EventId> pick(0, n - 1);
        for (int step = 0; step < 40; step++) {
            EventId a = pick(rng);
            EventId b = pick(rng);
            edges.insert({a, b});
            if (!closed.contains(a, b))
                closed.insertClosure(a, b);
            ASSERT_EQ(pairsOf(closed), oracle::closureOf(edges))
                << "n=" << n << " step=" << step << " edge=(" << a
                << "," << b << ")";
        }
    }
}

TEST(RelationDifferential, InsertWouldCycleMatchesFromScratchAcyclicity)
{
    // Grow a relation edge by edge, keeping it acyclic: the incremental
    // check on the maintained closure must agree with a from-scratch
    // acyclicity test of the would-be edge set.
    std::mt19937 rng(0x0DDC0C);
    for (std::size_t n : {6UL, 20UL, 64UL, 80UL}) {
        Relation closed(n);
        PairSet edges;
        std::uniform_int_distribution<EventId> pick(0, n - 1);
        for (int step = 0; step < 120; step++) {
            EventId a = pick(rng);
            EventId b = pick(rng);
            PairSet would = edges;
            would.insert({a, b});
            const bool incremental_cycle = closed.insertWouldCycle(a, b);
            EXPECT_EQ(incremental_cycle, !oracle::acyclicOf(would))
                << "n=" << n << " step=" << step << " edge=(" << a
                << "," << b << ")";
            if (incremental_cycle)
                continue; // keep the growing relation acyclic
            edges.insert({a, b});
            if (!closed.contains(a, b))
                closed.insertClosure(a, b);
        }
    }
}

TEST(RelationDifferential, UnionClosureMatchesFromScratch)
{
    std::mt19937 rng(0xF00D99);
    for (std::size_t n : {8UL, 30UL, 70UL}) {
        Sample base = randomRelation(rng, n, 0.04);
        Sample delta = randomRelation(rng, n, 0.03);
        Relation closed = base.rel.transitiveClosure();
        closed.unionClosure(delta.rel);
        EXPECT_EQ(closed, (base.rel | delta.rel).transitiveClosure());
    }
}

TEST(RelationDifferential, TemplatedHotPathsMatchWrappers)
{
    // The std::function wrappers must behave identically to the
    // templated fast paths they delegate to.
    std::mt19937 rng(0x7E3713);
    Sample s = randomRelation(rng, 40, 0.2);
    auto pred = [](EventId a, EventId b) { return (a + b) % 3 == 0; };
    std::function<bool(EventId, EventId)> fpred = pred;
    EXPECT_EQ(Relation::fromPredicate(40, pred),
              Relation::fromPredicate(40, fpred));
    EXPECT_EQ(s.rel.filter(pred), s.rel.filter(fpred));

    PairSet via_template;
    s.rel.forEach(
        [&](EventId a, EventId b) { via_template.insert({a, b}); });
    PairSet via_wrapper;
    std::function<void(EventId, EventId)> ffn = [&](EventId a,
                                                    EventId b) {
        via_wrapper.insert({a, b});
    };
    s.rel.forEach(ffn);
    EXPECT_EQ(via_template, via_wrapper);
    EXPECT_EQ(via_template, s.pairs);
}

TEST(EventSetDifferential, EmptyAndFilterMatchOracle)
{
    std::mt19937 rng(0x5E7000);
    for (std::size_t n : kSizes) {
        EventSet s(n);
        std::set<EventId> ids;
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        for (EventId id = 0; id < n; id++) {
            if (coin(rng) < 0.3) {
                s.insert(id);
                ids.insert(id);
            }
        }
        EXPECT_EQ(s.empty(), ids.empty());
        EXPECT_EQ(s.count(), ids.size());
        auto keep = [](EventId id) { return id % 2 == 0; };
        std::set<EventId> expect_ids;
        for (EventId id : ids) {
            if (keep(id))
                expect_ids.insert(id);
        }
        std::set<EventId> got_ids;
        s.filter(keep).forEach([&](EventId id) { got_ids.insert(id); });
        EXPECT_EQ(got_ids, expect_ids);
    }
    EXPECT_TRUE(EventSet(0).empty());
    EXPECT_TRUE(Relation(0).empty());
}

} // namespace
