/**
 * @file
 * Unit and differential tests for the windowed (banded sliding-window)
 * relation and event-set backends.
 *
 * The dense backend is the oracle: a WindowedRelation fed the same
 * closure-maintaining inserts as a dense Relation must answer
 * contains() identically for every pair that is still inside the live
 * window, across admissions, retirements, and the internal compactions
 * they trigger.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "relation/error.hh"
#include "relation/event_set.hh"
#include "relation/relation.hh"

namespace {

using mixedproxy::PanicError;
using mixedproxy::relation::EventId;
using mixedproxy::relation::Relation;
using mixedproxy::relation::WindowedEventSet;
using mixedproxy::relation::WindowedRelation;

TEST(WindowedRelation, AdmitInsertContains)
{
    WindowedRelation r(8);
    EXPECT_EQ(r.liveCount(), 0u);
    r.admit(0);
    r.admit(1);
    r.admit(2);
    EXPECT_EQ(r.liveCount(), 3u);
    r.insert(0, 1);
    r.insert(1, 2);
    EXPECT_TRUE(r.contains(0, 1));
    EXPECT_TRUE(r.contains(1, 2));
    EXPECT_FALSE(r.contains(0, 2));
    EXPECT_FALSE(r.contains(1, 0));
    EXPECT_EQ(r.pairCount(), 2u);
}

TEST(WindowedRelation, InsertClosureMaintainsTransitivity)
{
    WindowedRelation r(8);
    for (EventId id = 0; id < 4; id++)
        r.admit(id);
    r.insertClosure(0, 1);
    r.insertClosure(1, 2);
    r.insertClosure(2, 3);
    EXPECT_TRUE(r.contains(0, 2));
    EXPECT_TRUE(r.contains(0, 3));
    EXPECT_TRUE(r.contains(1, 3));
    EXPECT_FALSE(r.contains(3, 0));
}

TEST(WindowedRelation, InsertWouldCycleOnClosedChain)
{
    WindowedRelation r(8);
    for (EventId id = 0; id < 3; id++)
        r.admit(id);
    r.insertClosure(0, 1);
    r.insertClosure(1, 2);
    EXPECT_TRUE(r.insertWouldCycle(2, 0));
    EXPECT_TRUE(r.insertWouldCycle(1, 1));
    EXPECT_FALSE(r.insertWouldCycle(0, 2));
}

TEST(WindowedRelation, RetireBelowDropsOldRows)
{
    WindowedRelation r(4);
    for (EventId id = 0; id < 4; id++)
        r.admit(id);
    r.insertClosure(0, 1);
    r.insertClosure(1, 2);
    r.insertClosure(2, 3);
    r.retireBelow(2);
    EXPECT_EQ(r.liveCount(), 2u);
    EXPECT_TRUE(r.contains(2, 3));
    // The window slides on: ids 4 and 5 now fit.
    r.admit(4);
    r.admit(5);
    r.insertClosure(3, 4);
    r.insertClosure(4, 5);
    EXPECT_TRUE(r.contains(2, 5));
    EXPECT_TRUE(r.contains(3, 5));
}

TEST(WindowedRelation, AdmitBeyondCapacityPanics)
{
    WindowedRelation r(4);
    for (EventId id = 0; id < 4; id++)
        r.admit(id);
    EXPECT_THROW(r.admit(4), PanicError);
    // After retiring, the same admit succeeds.
    r.retireBelow(2);
    r.admit(4);
    EXPECT_EQ(r.liveCount(), 3u);
}

TEST(WindowedRelation, ClosureMatchesDenseUnderSlidingWindow)
{
    // Random banded DAG: edges only span a short distance, admitted in
    // ascending order, window slid periodically. Every live pair must
    // agree with the dense closure over the whole universe.
    constexpr std::size_t kUniverse = 300;
    constexpr std::size_t kWindow = 48;
    constexpr std::size_t kBand = 20;

    std::mt19937_64 rng(2022);
    Relation dense(kUniverse);
    WindowedRelation windowed(kWindow);
    EventId floor = 0;

    for (EventId b = 0; b < kUniverse; b++) {
        if (b + 1 - floor > kWindow - 8) {
            floor = b + 1 - (kWindow - 8);
            windowed.retireBelow(floor);
        }
        windowed.admit(b);
        for (EventId a = (b > kBand ? b - kBand : 0); a < b; a++) {
            if (a < floor || rng() % 4 != 0)
                continue;
            if (!dense.contains(a, b)) {
                dense.insertClosure(a, b);
                windowed.insertClosure(a, b);
            }
        }
        // Compare every live pair against the oracle.
        for (EventId x = floor; x <= b; x++) {
            for (EventId y = floor; y <= b; y++) {
                ASSERT_EQ(windowed.contains(x, y), dense.contains(x, y))
                    << "pair (" << x << ", " << y << ") at admit " << b;
            }
        }
    }
    EXPECT_LE(windowed.liveCount(), kWindow);
}

TEST(WindowedEventSet, AdmitInsertRetire)
{
    WindowedEventSet s(8);
    s.admit(0);
    s.admit(1);
    s.admit(2);
    s.insert(0);
    s.insert(2);
    EXPECT_TRUE(s.contains(0));
    EXPECT_FALSE(s.contains(1));
    EXPECT_TRUE(s.contains(2));
    EXPECT_EQ(s.count(), 2u);
    s.retireBelow(1);
    EXPECT_FALSE(s.contains(0)); // retired ids read as absent
    EXPECT_TRUE(s.contains(2));
    s.erase(2);
    EXPECT_TRUE(s.empty());
}

TEST(WindowedEventSet, MembershipSurvivesLongSlide)
{
    // Slide the window across many compactions; membership of live ids
    // must match a reference vector throughout.
    constexpr std::size_t kWindow = 64;
    constexpr std::size_t kUniverse = 2000;

    std::mt19937_64 rng(7);
    WindowedEventSet s(kWindow);
    std::vector<bool> oracle(kUniverse, false);
    EventId floor = 0;

    for (EventId id = 0; id < kUniverse; id++) {
        if (id + 1 - floor > kWindow / 2) {
            floor = id + 1 - kWindow / 2;
            s.retireBelow(floor);
        }
        s.admit(id);
        if (rng() % 3 == 0) {
            s.insert(id);
            oracle[id] = true;
        }
        for (EventId x = floor; x <= id; x++) {
            ASSERT_EQ(s.contains(x), oracle[x])
                << "id " << x << " at admit " << id;
        }
    }
}

} // namespace
