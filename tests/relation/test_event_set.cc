/**
 * @file
 * Unit tests for relation::EventSet.
 */

#include <gtest/gtest.h>

#include "relation/error.hh"
#include "relation/event_set.hh"

namespace {

using mixedproxy::PanicError;
using mixedproxy::relation::EventId;
using mixedproxy::relation::EventSet;

TEST(EventSet, EmptyOnConstruction)
{
    EventSet s(10);
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.universeSize(), 10u);
    for (EventId i = 0; i < 10; i++)
        EXPECT_FALSE(s.contains(i));
}

TEST(EventSet, InsertEraseContains)
{
    EventSet s(100);
    s.insert(0);
    s.insert(63);
    s.insert(64);
    s.insert(99);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_TRUE(s.contains(0));
    EXPECT_TRUE(s.contains(63));
    EXPECT_TRUE(s.contains(64));
    EXPECT_TRUE(s.contains(99));
    EXPECT_FALSE(s.contains(1));
    s.erase(63);
    EXPECT_FALSE(s.contains(63));
    EXPECT_EQ(s.count(), 3u);
}

TEST(EventSet, InitializerList)
{
    EventSet s(8, {1, 3, 5});
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(4));
}

TEST(EventSet, FullSet)
{
    for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 130u}) {
        EventSet s = EventSet::full(n);
        EXPECT_EQ(s.count(), n) << "universe " << n;
        EXPECT_FALSE(s.contains(n));
    }
}

TEST(EventSet, SetAlgebra)
{
    EventSet a(10, {1, 2, 3});
    EventSet b(10, {3, 4, 5});
    EXPECT_EQ((a | b), EventSet(10, {1, 2, 3, 4, 5}));
    EXPECT_EQ((a & b), EventSet(10, {3}));
    EXPECT_EQ((a - b), EventSet(10, {1, 2}));
}

TEST(EventSet, SubsetOf)
{
    EventSet a(10, {1, 2});
    EventSet b(10, {1, 2, 3});
    EXPECT_TRUE(a.subsetOf(b));
    EXPECT_FALSE(b.subsetOf(a));
    EXPECT_TRUE(a.subsetOf(a));
}

TEST(EventSet, MembersAscending)
{
    EventSet s(70, {65, 2, 33});
    std::vector<EventId> expected{2, 33, 65};
    EXPECT_EQ(s.members(), expected);
}

TEST(EventSet, Filter)
{
    EventSet s(10, {1, 2, 3, 4});
    EventSet even = s.filter([](EventId id) { return id % 2 == 0; });
    EXPECT_EQ(even, EventSet(10, {2, 4}));
}

TEST(EventSet, ToString)
{
    EXPECT_EQ(EventSet(5, {0, 3}).toString(), "{0, 3}");
    EXPECT_EQ(EventSet(5).toString(), "{}");
}

TEST(EventSet, OutOfUniversePanics)
{
    EventSet s(4);
    EXPECT_THROW(s.insert(4), PanicError);
    EXPECT_FALSE(s.contains(4)); // queries out of range are just false
}

TEST(EventSet, UniverseMismatchPanics)
{
    EventSet a(4);
    EventSet b(5);
    EXPECT_THROW(a | b, PanicError);
    EXPECT_THROW(a & b, PanicError);
    EXPECT_THROW(a.subsetOf(b), PanicError);
}

} // namespace
