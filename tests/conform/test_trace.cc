/**
 * @file
 * Tests for the mixedproxy.trace.v1 writer and reader: round-tripping,
 * field-order independence, forward compatibility, and error recovery.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "conform/trace.hh"

namespace {

using namespace mixedproxy;
using conform::TraceHeader;
using conform::TraceLine;
using conform::TraceLocation;
using conform::TraceOp;
using conform::TraceReader;
using conform::TraceThread;
using conform::TraceWriter;

TraceHeader
sampleHeader()
{
    TraceHeader hdr;
    hdr.test = "mp";
    hdr.threads = {TraceThread{"t0", 0, 0}, TraceThread{"t1", 1, 0}};
    hdr.locations = {TraceLocation{"x", 0}, TraceLocation{"y", 7}};
    return hdr;
}

TEST(TraceWriter, RoundTripsThroughReader)
{
    std::stringstream ss;
    TraceWriter writer(ss);
    writer.header(sampleHeader());
    EXPECT_EQ(writer.nextUid(), 2u); // after the two init writes

    const std::uint64_t w0 = writer.store(
        0, 0, 1, litmus::Semantics::Relaxed, litmus::Scope::Gpu,
        litmus::ProxyKind::Generic);
    EXPECT_EQ(w0, 2u);
    writer.commit(w0);
    writer.load(1, 0, 1, w0, litmus::Semantics::Acquire,
                litmus::Scope::Gpu, litmus::ProxyKind::Generic, "r0");
    const std::uint64_t w1 =
        writer.rmw(1, 1, 9, 7, 1, litmus::Semantics::AcqRel,
                   litmus::Scope::Sys, "r1");
    EXPECT_EQ(w1, 3u);
    writer.fence(0, litmus::Semantics::Sc, litmus::Scope::Sys);
    writer.proxyFence(1, litmus::ProxyFenceKind::Texture,
                      litmus::Scope::Cta);
    writer.barrier(0, 0);
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 1;
    outcome.registers["t1.r1"] = 7;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 9;
    writer.finish(outcome);

    TraceReader reader(ss);
    TraceLine line;

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    ASSERT_EQ(line.kind, TraceLine::Kind::Header);
    EXPECT_EQ(line.header.test, "mp");
    ASSERT_EQ(line.header.threads.size(), 2u);
    EXPECT_EQ(line.header.threads[1].name, "t1");
    EXPECT_EQ(line.header.threads[1].cta, 1);
    ASSERT_EQ(line.header.locations.size(), 2u);
    EXPECT_EQ(line.header.locations[1].name, "y");
    EXPECT_EQ(line.header.locations[1].init, 7u);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    ASSERT_EQ(line.kind, TraceLine::Kind::Event);
    EXPECT_EQ(line.event.op, TraceOp::Store);
    EXPECT_EQ(line.event.thread, 0u);
    EXPECT_EQ(line.event.location, 0u);
    EXPECT_EQ(line.event.value, 1u);
    EXPECT_EQ(line.event.uid, 2u);
    EXPECT_EQ(line.event.sem, litmus::Semantics::Relaxed);
    EXPECT_EQ(line.event.scope, litmus::Scope::Gpu);
    EXPECT_EQ(line.event.proxy, litmus::ProxyKind::Generic);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Commit);
    EXPECT_EQ(line.event.uid, 2u);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Load);
    EXPECT_EQ(line.event.rf, 2u);
    EXPECT_EQ(line.event.destReg, "r0");
    EXPECT_EQ(line.event.sem, litmus::Semantics::Acquire);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Rmw);
    EXPECT_EQ(line.event.value, 9u);
    EXPECT_EQ(line.event.oldValue, 7u);
    EXPECT_EQ(line.event.rf, 1u);
    EXPECT_EQ(line.event.uid, 3u);
    EXPECT_EQ(line.event.destReg, "r1");

    // The RMW's immediate commit.
    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Commit);
    EXPECT_EQ(line.event.uid, 3u);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Fence);
    EXPECT_EQ(line.event.sem, litmus::Semantics::Sc);
    EXPECT_EQ(line.event.scope, litmus::Scope::Sys);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::FenceProxy);
    EXPECT_EQ(line.event.proxyFence, litmus::ProxyFenceKind::Texture);
    EXPECT_EQ(line.event.scope, litmus::Scope::Cta);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Barrier);
    EXPECT_EQ(line.event.thread, 0u);

    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    ASSERT_EQ(line.kind, TraceLine::Kind::Footer);
    EXPECT_EQ(line.footer.registers.at("t1.r0"), 1u);
    EXPECT_EQ(line.footer.registers.at("t1.r1"), 7u);
    EXPECT_EQ(line.footer.memory.at("x"), 1u);
    EXPECT_EQ(line.footer.memory.at("y"), 9u);

    EXPECT_EQ(reader.next(line), TraceReader::Status::Eof);
}

TEST(TraceWriter, SeqNumbersAreMonotone)
{
    std::stringstream ss;
    TraceWriter writer(ss);
    writer.header(sampleHeader());
    const std::uint64_t uid = writer.store(
        0, 0, 1, litmus::Semantics::Weak, litmus::Scope::None,
        litmus::ProxyKind::Generic);
    writer.commit(uid);
    writer.fence(0, litmus::Semantics::AcqRel, litmus::Scope::Cta);

    TraceReader reader(ss);
    TraceLine line;
    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok); // header
    for (std::uint64_t expected = 0; expected < 3; expected++) {
        ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
        EXPECT_EQ(line.event.seq, expected);
    }
}

TEST(TraceReader, AcceptsFieldsInAnyOrder)
{
    std::stringstream ss;
    ss << R"({"uid":5,"val":3,"loc":1,"t":0,"ev":"st","seq":12,)"
       << R"("proxy":"texture","scope":"cta","sem":"weak"})" << '\n';
    TraceReader reader(ss);
    TraceLine line;
    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Store);
    EXPECT_EQ(line.event.seq, 12u);
    EXPECT_EQ(line.event.uid, 5u);
    EXPECT_EQ(line.event.proxy, litmus::ProxyKind::Texture);
    EXPECT_EQ(line.event.sem, litmus::Semantics::Weak);
}

TEST(TraceReader, SkipsUnknownFieldsAndBlankLines)
{
    std::stringstream ss;
    ss << '\n'
       << R"({"seq":0,"ev":"commit","uid":2,"future":[1,{"a":"b"}],)"
       << R"("note":"ignored"})" << '\n'
       << "   \n";
    TraceReader reader(ss);
    TraceLine line;
    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Commit);
    EXPECT_EQ(line.event.uid, 2u);
    EXPECT_EQ(reader.next(line), TraceReader::Status::Eof);
}

TEST(TraceReader, ReportsErrorsAndRecovers)
{
    std::stringstream ss;
    ss << "this is not json\n"
       << R"({"seq":1,"ev":"nonsense"})" << '\n'
       << R"({"seq":2,"ev":"bar","t":0,"bar":1})" << '\n';
    TraceReader reader(ss);
    TraceLine line;
    EXPECT_EQ(reader.next(line), TraceReader::Status::Error);
    EXPECT_EQ(reader.lineNumber(), 1u);
    EXPECT_EQ(reader.next(line), TraceReader::Status::Error);
    EXPECT_NE(reader.error().find("nonsense"), std::string::npos);
    ASSERT_EQ(reader.next(line), TraceReader::Status::Ok);
    EXPECT_EQ(line.event.op, TraceOp::Barrier);
    EXPECT_EQ(line.event.barrier, 1u);
}

TEST(TraceReader, RejectsUnsupportedSchema)
{
    std::stringstream ss;
    ss << R"({"schema":"mixedproxy.trace.v999","test":"mp"})" << '\n';
    TraceReader reader(ss);
    TraceLine line;
    EXPECT_EQ(reader.next(line), TraceReader::Status::Error);
    EXPECT_NE(reader.error().find("schema"), std::string::npos);
}

} // namespace
