/**
 * @file
 * Tests for the streaming conformance checker: conformant traces pass,
 * and each violation class is detected online and attributed to the
 * right axiom.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "conform/checker.hh"
#include "conform/trace.hh"

namespace {

using namespace mixedproxy;
using conform::checkTrace;
using conform::ConformOptions;
using conform::ConformReport;
using conform::TraceHeader;
using conform::TraceLocation;
using conform::TraceThread;
using conform::TraceWriter;
using conform::ViolationKind;
using litmus::ProxyKind;
using litmus::Scope;
using litmus::Semantics;

/** Two threads on one GPU, two zero-initialized locations x and y. */
TraceHeader
mpHeader()
{
    TraceHeader hdr;
    hdr.test = "mp";
    hdr.threads = {TraceThread{"t0", 0, 0}, TraceThread{"t1", 1, 0}};
    hdr.locations = {TraceLocation{"x", 0}, TraceLocation{"y", 0}};
    return hdr;
}

std::uint64_t
kindCount(const ConformReport &report, ViolationKind kind)
{
    return report.stats.byKind[(std::size_t)kind];
}

TEST(StreamChecker, ConformantMessagePassingTrace)
{
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    // t0: st.relaxed x=1; st.release y=1. t1: ld.acquire y=1; ld x=1.
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(wx);
    const auto wy = w.store(0, 1, 1, Semantics::Release, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(wy);
    w.load(1, 1, 1, wy, Semantics::Acquire, Scope::Gpu,
           ProxyKind::Generic, "r0");
    w.load(1, 0, 1, wx, Semantics::Weak, Scope::None,
           ProxyKind::Generic, "r1");
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 1;
    outcome.registers["t1.r1"] = 1;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 1;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_TRUE(report.conformant()) << report.summary();
    EXPECT_EQ(report.test, "mp");
    EXPECT_TRUE(report.sawFooter);
    ASSERT_TRUE(report.outcome.has_value());
    EXPECT_EQ(*report.outcome, outcome);
    EXPECT_EQ(report.stats.loads, 2u);
    EXPECT_EQ(report.stats.stores, 2u);
    EXPECT_EQ(report.stats.commits, 2u);
}

TEST(StreamChecker, DetectsRfValueMismatch)
{
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(wx);
    // The load claims to read wx but reports value 2.
    w.load(1, 0, 2, wx, Semantics::Weak, Scope::None,
           ProxyKind::Generic, "r0");
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 2;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 0;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_FALSE(report.conformant());
    EXPECT_EQ(kindCount(report, ViolationKind::RfValue), 1u);
}

TEST(StreamChecker, DetectsCoherenceViolation)
{
    // t1 acquires t0's release of x (so the release happens-before
    // everything t1 does after), then overwrites x — but the trace
    // commits t1's write first: commit order contradicts causality.
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    const auto w1 = w.store(0, 0, 1, Semantics::Release, Scope::Gpu,
                            ProxyKind::Generic);
    w.load(1, 0, 1, w1, Semantics::Acquire, Scope::Gpu,
           ProxyKind::Generic, "r0");
    const auto w2 = w.store(1, 0, 2, Semantics::Relaxed, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(w2);
    w.commit(w1); // w1 causally precedes w2 yet commits after it
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 1;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 0;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_FALSE(report.conformant());
    EXPECT_EQ(kindCount(report, ViolationKind::Coherence), 1u)
        << report.summary();
}

TEST(StreamChecker, DetectsCausalityStaleRead)
{
    // Message passing gone wrong: t1 acquires the flag but still reads
    // the initial value of the data location.
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(wx);
    const auto wy = w.store(0, 1, 1, Semantics::Release, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(wy);
    w.load(1, 1, 1, wy, Semantics::Acquire, Scope::Gpu,
           ProxyKind::Generic, "r0");
    w.load(1, 0, 0, 0, Semantics::Weak, Scope::None,
           ProxyKind::Generic, "r1"); // rf = init write of x (uid 0)
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 1;
    outcome.registers["t1.r1"] = 0;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 1;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_FALSE(report.conformant());
    EXPECT_EQ(kindCount(report, ViolationKind::Causality), 1u)
        << report.summary();
}

TEST(StreamChecker, DetectsFenceScCycle)
{
    // Store buffering with SC fences: both threads read the initial
    // values even though both writes committed before either read —
    // the forced SC-fence order is cyclic.
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Sys,
                            ProxyKind::Generic);
    w.commit(wx);
    w.fence(0, Semantics::Sc, Scope::Sys);
    const auto wy = w.store(1, 1, 1, Semantics::Relaxed, Scope::Sys,
                            ProxyKind::Generic);
    w.commit(wy);
    w.fence(1, Semantics::Sc, Scope::Sys);
    w.load(0, 1, 0, 1, Semantics::Relaxed, Scope::Sys,
           ProxyKind::Generic, "r0"); // t0 reads y = init
    w.load(1, 0, 0, 0, Semantics::Relaxed, Scope::Sys,
           ProxyKind::Generic, "r0"); // t1 reads x = init
    litmus::Outcome outcome;
    outcome.registers["t0.r0"] = 0;
    outcome.registers["t1.r0"] = 0;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 1;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_FALSE(report.conformant());
    EXPECT_EQ(kindCount(report, ViolationKind::FenceSc), 1u)
        << report.summary();
}

TEST(StreamChecker, StoreBufferingWithoutFencesIsConformant)
{
    // The same store-buffering outcome without fences is allowed.
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Sys,
                            ProxyKind::Generic);
    w.commit(wx);
    const auto wy = w.store(1, 1, 1, Semantics::Relaxed, Scope::Sys,
                            ProxyKind::Generic);
    w.commit(wy);
    w.load(0, 1, 0, 1, Semantics::Relaxed, Scope::Sys,
           ProxyKind::Generic, "r0");
    w.load(1, 0, 0, 0, Semantics::Relaxed, Scope::Sys,
           ProxyKind::Generic, "r0");
    litmus::Outcome outcome;
    outcome.registers["t0.r0"] = 0;
    outcome.registers["t1.r0"] = 0;
    outcome.memory["x"] = 1;
    outcome.memory["y"] = 1;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_TRUE(report.conformant()) << report.summary();
}

TEST(StreamChecker, DetectsAtomicityViolation)
{
    // An RMW reads the init value of x although a morally-strong store
    // commits between its read and its write.
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Gpu,
                            ProxyKind::Generic);
    w.commit(wx);
    w.rmw(1, 0, 5, 0, 0, Semantics::AcqRel, Scope::Gpu, "r0");
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 0;
    outcome.memory["x"] = 5;
    outcome.memory["y"] = 0;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_FALSE(report.conformant());
    EXPECT_EQ(kindCount(report, ViolationKind::Atomicity), 1u)
        << report.summary();
}

TEST(StreamChecker, DetectsMalformedTraces)
{
    {
        // rf names a uid that never existed.
        std::stringstream ss;
        TraceWriter w(ss);
        w.header(mpHeader());
        w.load(0, 0, 0, 999, Semantics::Weak, Scope::None,
               ProxyKind::Generic, "r0");
        litmus::Outcome outcome;
        outcome.registers["t0.r0"] = 0;
        outcome.memory["x"] = 0;
        outcome.memory["y"] = 0;
        w.finish(outcome);
        const ConformReport report = checkTrace(ss);
        EXPECT_GE(kindCount(report, ViolationKind::Malformed), 1u);
    }
    {
        // Footer memory disagrees with the last committed write.
        std::stringstream ss;
        TraceWriter w(ss);
        w.header(mpHeader());
        const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Gpu,
                                ProxyKind::Generic);
        w.commit(wx);
        litmus::Outcome outcome;
        outcome.memory["x"] = 42;
        outcome.memory["y"] = 0;
        w.finish(outcome);
        const ConformReport report = checkTrace(ss);
        EXPECT_GE(kindCount(report, ViolationKind::Malformed), 1u);
    }
    {
        // Dropped footer.
        std::stringstream ss;
        TraceWriter w(ss);
        w.header(mpHeader());
        const ConformReport report = checkTrace(ss);
        EXPECT_GE(kindCount(report, ViolationKind::Malformed), 1u);
    }
    {
        // A write committing twice.
        std::stringstream ss;
        TraceWriter w(ss);
        w.header(mpHeader());
        const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Gpu,
                                ProxyKind::Generic);
        w.commit(wx);
        w.commit(wx);
        litmus::Outcome outcome;
        outcome.memory["x"] = 1;
        outcome.memory["y"] = 0;
        w.finish(outcome);
        const ConformReport report = checkTrace(ss);
        EXPECT_GE(kindCount(report, ViolationKind::Malformed), 1u);
    }
}

TEST(StreamChecker, BarrierSynchronizationCreatesOrder)
{
    // Both threads in the same CTA: t0 writes x, both pass a barrier,
    // t1 reads the initial value of x anyway — barrier-induced
    // causality convicts.
    TraceHeader hdr;
    hdr.test = "bar";
    hdr.threads = {TraceThread{"t0", 0, 0}, TraceThread{"t1", 0, 0}};
    hdr.locations = {TraceLocation{"x", 0}};
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(hdr);
    const auto wx = w.store(0, 0, 1, Semantics::Relaxed, Scope::Cta,
                            ProxyKind::Generic);
    w.commit(wx);
    w.barrier(0, 0);
    w.barrier(1, 0);
    w.load(1, 0, 0, 0, Semantics::Weak, Scope::None,
           ProxyKind::Generic, "r0"); // rf = init, but wx hb-before
    litmus::Outcome outcome;
    outcome.registers["t1.r0"] = 0;
    outcome.memory["x"] = 1;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss);
    EXPECT_FALSE(report.conformant());
    EXPECT_EQ(kindCount(report, ViolationKind::Causality), 1u)
        << report.summary();
}

TEST(StreamChecker, WindowedRetirementBoundsMemory)
{
    // Many more writes than the window admits: the checker retires
    // eagerly, stays conformant, and reads of retired writes count as
    // unknown instead of convicting.
    ConformOptions opts;
    opts.window = 8;
    TraceHeader hdr;
    hdr.test = "wide";
    hdr.threads = {TraceThread{"t0", 0, 0}};
    hdr.locations = {TraceLocation{"x", 0}};
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(hdr);
    std::uint64_t firstUid = 0;
    std::uint64_t lastValue = 0;
    for (std::uint64_t i = 0; i < 100; i++) {
        const auto uid =
            w.store(0, 0, i + 1, Semantics::Relaxed, Scope::Gpu,
                    ProxyKind::Generic);
        if (i == 0)
            firstUid = uid;
        w.commit(uid);
        lastValue = i + 1;
    }
    // This rf left the window long ago: unknowable, not a violation.
    w.load(0, 0, 1, firstUid, Semantics::Weak, Scope::None,
           ProxyKind::Generic, "r0");
    litmus::Outcome outcome;
    outcome.registers["t0.r0"] = 1;
    outcome.memory["x"] = lastValue;
    w.finish(outcome);

    const ConformReport report = checkTrace(ss, opts);
    EXPECT_TRUE(report.conformant()) << report.summary();
    EXPECT_EQ(report.stats.rfUnknown, 1u);
    EXPECT_GT(report.stats.retiredWrites, 0u);
    // Live writes never exceeded the window plus the in-flight store.
    EXPECT_LE(report.stats.peakWindow, opts.window + 2);
}

TEST(StreamChecker, SummaryNamesTestAndVerdict)
{
    std::stringstream ss;
    TraceWriter w(ss);
    w.header(mpHeader());
    litmus::Outcome outcome;
    outcome.memory["x"] = 0;
    outcome.memory["y"] = 0;
    w.finish(outcome);
    const ConformReport report = checkTrace(ss);
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("trace mp"), std::string::npos);
    EXPECT_NE(summary.find("CONFORMANT"), std::string::npos);
}

} // namespace
