/**
 * @file
 * Randomized differential suite for the streaming conformance checker
 * (ISSUE 10): every trace the operational machine records for the
 * built-in corpus must check CONFORMANT, and its footer outcome must
 * be one the axiomatic model allows — the streaming verdict and the
 * batch verdict agree. Fault-injected traces (conform/fault.hh, the
 * same module tools/tracegen uses) must be flagged NONCONFORMANT with
 * the axiom the fault class targets.
 */

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "conform/checker.hh"
#include "conform/fault.hh"
#include "litmus/registry.hh"
#include "microarch/simulator.hh"
#include "model/checker.hh"

namespace {

using namespace mixedproxy;

std::string
record(const litmus::LitmusTest &test, std::uint64_t seed,
       microarch::CoherenceMode mode)
{
    microarch::SimOptions opts;
    opts.mode = mode;
    std::ostringstream out;
    microarch::Simulator(opts).runTraced(test, seed, out);
    return out.str();
}

conform::ConformReport
check(const std::string &trace)
{
    std::istringstream in(trace);
    return conform::checkTrace(in);
}

/**
 * The corpus differential: for every built-in test and several seeds,
 * the recorded trace is conformant and its final state is an outcome
 * the batch checker admits. Together the two properties say the
 * streaming checker's under-approximation never convicts a legal
 * machine execution, while the machine never slips an illegal one
 * past the model.
 */
TEST(ConformDifferential, CorpusTracesConformAndAgreeWithModel)
{
    model::CheckOptions copts;
    copts.collectWitnesses = false;
    model::Checker checker(copts);

    for (const auto &test : litmus::allTests()) {
        const std::set<litmus::Outcome> allowed =
            checker.check(test).outcomes;
        for (std::uint64_t seed : {1ull, 17ull, 901ull}) {
            conform::ConformReport report = check(record(
                test, seed, microarch::CoherenceMode::Proxy));
            EXPECT_TRUE(report.conformant())
                << test.name() << " seed " << seed << "\n"
                << report.summary();
            ASSERT_TRUE(report.outcome.has_value())
                << test.name() << " seed " << seed;
            EXPECT_TRUE(allowed.count(*report.outcome))
                << test.name() << " seed " << seed << ": outcome "
                << report.outcome->toString()
                << " not allowed by the model";
        }
    }
}

/** Every machine coherence mode records conformant traces. */
TEST(ConformDifferential, AllCoherenceModesConform)
{
    for (auto mode : {microarch::CoherenceMode::Proxy,
                      microarch::CoherenceMode::FullyCoherent,
                      microarch::CoherenceMode::FenceReuse}) {
        for (const auto &test : litmus::allTests()) {
            conform::ConformReport report =
                check(record(test, 5, mode));
            EXPECT_TRUE(report.conformant())
                << test.name() << " mode "
                << microarch::toString(mode) << "\n"
                << report.summary();
        }
    }
}

/**
 * Fault injection: sweep the corpus, plant each fault class wherever
 * the trace offers a site, and require the checker to convict the
 * axiom that class targets. Floors on the injection counts keep the
 * sweep honest — a refactor that silently made every trace
 * "site-free" would otherwise pass vacuously.
 */
TEST(ConformDifferential, InjectedFaultsFlagTheTargetAxiom)
{
    for (auto kind : {conform::FaultKind::Drop,
                      conform::FaultKind::Reorder,
                      conform::FaultKind::Corrupt}) {
        std::size_t injected = 0;
        for (const auto &test : litmus::allTests()) {
            const std::string trace =
                record(test, 11, microarch::CoherenceMode::Proxy);
            for (std::uint64_t faultSeed : {1ull, 2ull}) {
                std::optional<std::string> faulted =
                    conform::injectFault(trace, kind, faultSeed);
                if (!faulted)
                    continue;
                injected++;
                conform::ConformReport report = check(*faulted);
                EXPECT_FALSE(report.conformant())
                    << test.name() << " fault "
                    << conform::toString(kind) << " seed "
                    << faultSeed;
                const auto expected = static_cast<std::size_t>(
                    conform::expectedViolation(kind));
                EXPECT_GT(report.stats.byKind[expected], 0u)
                    << test.name() << " fault "
                    << conform::toString(kind) << " seed " << faultSeed
                    << ": expected a "
                    << conform::toString(
                           conform::expectedViolation(kind))
                    << " violation\n"
                    << report.summary();
            }
        }
        // Drop/corrupt sites exist in nearly every trace; reorder
        // needs two program-ordered same-location generic stores,
        // which only the coww-style tests provide.
        const std::size_t floor =
            kind == conform::FaultKind::Reorder ? 2 : 80;
        EXPECT_GE(injected, floor)
            << "fault " << conform::toString(kind)
            << " found implausibly few injection sites";
    }
}

/** The same (trace, kind, seed) tuple always plants the same fault. */
TEST(ConformDifferential, InjectionIsDeterministic)
{
    const std::string trace =
        record(litmus::testByName("fig9_message_passing"), 7,
               microarch::CoherenceMode::Proxy);
    for (auto kind :
         {conform::FaultKind::Drop, conform::FaultKind::Corrupt}) {
        auto a = conform::injectFault(trace, kind, 3);
        auto b = conform::injectFault(trace, kind, 3);
        ASSERT_TRUE(a.has_value());
        EXPECT_EQ(*a, *b);
    }
}

} // namespace
