/**
 * @file
 * Unit tests for the litmus text-format parser and the LitmusTest /
 * LitmusBuilder structural validation.
 */

#include <gtest/gtest.h>

#include "litmus/parser.hh"
#include "litmus/test.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy::litmus;
using mixedproxy::FatalError;

const char *kFig8a = R"(
# Fig 8a from the paper
name: fig8a
alias rd2 rd1

thread t0 cta 0 gpu 0:
  st.global.u32 [rd1], 42
  fence.proxy.alias
  ld.global.u32 r3, [rd2]

require: t0.r3 == 42
)";

TEST(Parser, ParsesFig8a)
{
    LitmusTest test = parseTest(kFig8a);
    EXPECT_EQ(test.name(), "fig8a");
    ASSERT_EQ(test.threads().size(), 1u);
    const Thread &t0 = test.threads()[0];
    EXPECT_EQ(t0.name, "t0");
    EXPECT_EQ(t0.cta, 0);
    EXPECT_EQ(t0.gpu, 0);
    ASSERT_EQ(t0.instructions.size(), 3u);
    EXPECT_EQ(t0.instructions[1].opcode, Opcode::FenceProxy);
    EXPECT_EQ(test.locationOf("rd2"), "rd1");
    EXPECT_EQ(test.locationOf("rd1"), "rd1");
    ASSERT_EQ(test.assertions().size(), 1u);
    EXPECT_EQ(test.assertions()[0].kind, AssertKind::Require);
}

TEST(Parser, DefaultPlacement)
{
    LitmusTest test = parseTest(R"(
name: defaults
thread a:
  st.global.u32 [x], 1
thread b:
  ld.global.u32 r1, [x]
permit: b.r1 == 1
)");
    EXPECT_EQ(test.threads()[0].cta, 0);
    EXPECT_EQ(test.threads()[1].cta, 1);
    EXPECT_EQ(test.threads()[0].gpu, 0);
    EXPECT_EQ(test.threads()[1].gpu, 0);
}

TEST(Parser, InitValues)
{
    LitmusTest test = parseTest(R"(
name: init
init x 7
init y 0x10
thread t0:
  ld.global.u32 r1, [x]
permit: t0.r1 == 7
)");
    EXPECT_EQ(test.initOf("x"), 7u);
    EXPECT_EQ(test.initOf("y"), 16u);
    EXPECT_EQ(test.initOf("unset"), 0u);
}

TEST(Parser, InitThroughAlias)
{
    LitmusTest test = parseTest(R"(
name: init_alias
alias b a
init b 9
thread t0:
  ld.global.u32 r1, [a]
permit: t0.r1 == 9
)");
    EXPECT_EQ(test.initOf("a"), 9u);
}

TEST(Parser, CommentsAndBlankLines)
{
    LitmusTest test = parseTest(R"(
# leading comment
name: comments   # trailing comment

// C++-style comment
thread t0:
  ld.global.u32 r1, [x]   # comment after instruction

permit: t0.r1 == 0
)");
    EXPECT_EQ(test.name(), "comments");
    EXPECT_EQ(test.threads()[0].instructions.size(), 1u);
}

TEST(Parser, AllAssertionKinds)
{
    LitmusTest test = parseTest(R"(
name: kinds
thread t0:
  ld.global.u32 r1, [x]
require: t0.r1 == 0
permit: t0.r1 == 0
forbid: t0.r1 == 1
)");
    ASSERT_EQ(test.assertions().size(), 3u);
    EXPECT_EQ(test.assertions()[0].kind, AssertKind::Require);
    EXPECT_EQ(test.assertions()[1].kind, AssertKind::Permit);
    EXPECT_EQ(test.assertions()[2].kind, AssertKind::Forbid);
}

TEST(Parser, Errors)
{
    // Missing name.
    EXPECT_THROW(parseTest("thread t0:\n ld.global.u32 r1, [x]\n"),
                 FatalError);
    // Instruction outside a thread.
    EXPECT_THROW(parseTest("name: x\nld.global.u32 r1, [x]\n"),
                 FatalError);
    // Header missing colon.
    EXPECT_THROW(parseTest("name: x\nthread t0\n"), FatalError);
    // Bad attribute.
    EXPECT_THROW(parseTest("name: x\nthread t0 smx 3:\n"), FatalError);
    // Odd attribute list.
    EXPECT_THROW(parseTest("name: x\nthread t0 cta:\n"), FatalError);
    // Empty thread.
    EXPECT_THROW(
        parseTest("name: x\nthread t0:\nthread t1:\n ld.global.u32 "
                  "r1, [x]\n"),
        FatalError);
    // Alias arity.
    EXPECT_THROW(parseTest("name: x\nalias a\n"), FatalError);
    // Init arity and value.
    EXPECT_THROW(parseTest("name: x\ninit a\n"), FatalError);
    EXPECT_THROW(parseTest("name: x\ninit a zz\n"), FatalError);
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    try {
        parseTest("name: x\n\nthread t0:\n  frobnicate r1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 4"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Parser, RoundTripThroughToString)
{
    LitmusTest test = parseTest(kFig8a);
    LitmusTest again = parseTest(test.toString());
    EXPECT_EQ(again.name(), test.name());
    EXPECT_EQ(again.threads().size(), test.threads().size());
    EXPECT_EQ(again.threads()[0].instructions.size(),
              test.threads()[0].instructions.size());
    EXPECT_EQ(again.locationOf("rd2"), "rd1");
    EXPECT_EQ(again.assertions().size(), test.assertions().size());
}

TEST(LitmusTest, ValidationCatchesRegisterMisuse)
{
    // Register used before definition.
    LitmusBuilder undef("undef");
    EXPECT_THROW(undef.thread("t0", 0, 0, {"st.global.u32 [x], r1"})
                     .build(),
                 FatalError);

    // Register defined twice.
    LitmusBuilder redef("redef");
    EXPECT_THROW(redef
                     .thread("t0", 0, 0,
                             {"ld.global.u32 r1, [x]",
                              "ld.global.u32 r1, [y]"})
                     .build(),
                 FatalError);
}

TEST(LitmusTest, ValidationCatchesPlacementConflicts)
{
    LitmusBuilder b("conflict");
    b.thread("t0", 0, 0, {"ld.global.u32 r1, [x]"});
    b.thread("t1", 0, 1, {"ld.global.u32 r1, [x]"}); // CTA 0 on GPU 1
    EXPECT_THROW(b.build(), FatalError);
}

TEST(LitmusTest, ValidationCatchesDuplicateThreadNames)
{
    LitmusBuilder b("dup");
    b.thread("t0", 0, 0, {"ld.global.u32 r1, [x]"});
    b.thread("t0", 1, 0, {"ld.global.u32 r1, [x]"});
    EXPECT_THROW(b.build(), FatalError);
}

TEST(LitmusTest, ValidationCatchesMixedSizes)
{
    LitmusBuilder b("mixed");
    b.thread("t0", 0, 0, {"st.global.u32 [x], 1"});
    b.thread("t1", 1, 0, {"ld.global.u64 r1, [x]"});
    EXPECT_THROW(b.build(), FatalError);
}

TEST(LitmusTest, AliasBookkeeping)
{
    LitmusTest test("aliases");
    test.addAlias("b", "a");
    test.addAlias("c", "b"); // chains resolve to the root
    EXPECT_EQ(test.locationOf("c"), "a");
    EXPECT_THROW(test.addAlias("a", "a"), FatalError);
    // Re-aliasing to the same class is idempotent.
    test.addAlias("c", "a");
    // But re-aliasing to a different class is an error.
    test.addAlias("e", "d");
    EXPECT_THROW(test.addAlias("c", "d"), FatalError);
}

TEST(LitmusTest, AddressesOf)
{
    LitmusTest test = parseTest(kFig8a);
    auto vas = test.addressesOf("rd1");
    ASSERT_EQ(vas.size(), 2u);
    EXPECT_EQ(vas[0], "rd1");
    EXPECT_EQ(vas[1], "rd2");
}

TEST(LitmusTest, ThreadIndexLookup)
{
    LitmusTest test = parseTest(kFig8a);
    EXPECT_EQ(test.threadIndex("t0"), 0u);
    EXPECT_THROW(test.threadIndex("nope"), FatalError);
}

TEST(LitmusTest, InstructionCount)
{
    LitmusTest test = parseTest(kFig8a);
    EXPECT_EQ(test.instructionCount(), 3u);
}

} // namespace
