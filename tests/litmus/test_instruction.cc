/**
 * @file
 * Unit tests for the PTX-surface instruction decoder, including the
 * paper's Fig. 5 decoding examples.
 */

#include <gtest/gtest.h>

#include "litmus/instruction.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy::litmus;
using mixedproxy::FatalError;

TEST(Decode, WeakGlobalLoad)
{
    Instruction i = decode("ld.global.u32 r1, [rd6]");
    EXPECT_EQ(i.opcode, Opcode::Ld);
    EXPECT_EQ(i.sem, Semantics::Weak);
    EXPECT_EQ(i.scope, Scope::None);
    EXPECT_EQ(i.proxy, ProxyKind::Generic);
    EXPECT_EQ(i.address, "rd6");
    EXPECT_EQ(i.destReg, "r1");
    EXPECT_EQ(i.accessSize, 4u);
    EXPECT_TRUE(i.isLoad());
    EXPECT_FALSE(i.isStore());
}

// Fig. 5 row 2: st.global.sys.u32 [rd6], r4 -> Store, Sys scope, generic
// proxy. A bare scope implies a relaxed strong operation.
TEST(Decode, StrongScopedStore)
{
    Instruction i = decode("st.global.sys.u32 [rd6], r4");
    EXPECT_EQ(i.opcode, Opcode::St);
    EXPECT_EQ(i.sem, Semantics::Relaxed);
    EXPECT_EQ(i.scope, Scope::Sys);
    EXPECT_EQ(i.proxy, ProxyKind::Generic);
    EXPECT_TRUE(i.value.isReg());
    EXPECT_EQ(i.value.reg, "r4");
}

TEST(Decode, WeakStoreImmediate)
{
    Instruction i = decode("st.global.u32 [rd8], 42");
    EXPECT_EQ(i.sem, Semantics::Weak);
    EXPECT_TRUE(i.value.isImm());
    EXPECT_EQ(i.value.imm, 42u);
}

// Fig. 5 row 4: surface store via the surface proxy.
TEST(Decode, SurfaceStoreWithGeometry)
{
    Instruction i = decode("sust.b.1d.vec.b32.clamp [surf, r1], r2");
    EXPECT_EQ(i.opcode, Opcode::Sust);
    EXPECT_EQ(i.proxy, ProxyKind::Surface);
    EXPECT_EQ(i.sem, Semantics::Weak);
    EXPECT_EQ(i.address, "surf");
    ASSERT_EQ(i.addressCoordRegs.size(), 1u);
    EXPECT_EQ(i.addressCoordRegs[0], "r1");
    EXPECT_TRUE(i.value.isReg());
}

TEST(Decode, SurfaceLoad)
{
    Instruction i = decode("suld.b.u32 r1, [s]");
    EXPECT_EQ(i.opcode, Opcode::Suld);
    EXPECT_EQ(i.proxy, ProxyKind::Surface);
    EXPECT_TRUE(i.isLoad());
    EXPECT_FALSE(i.isStore());
}

TEST(Decode, TextureLoad)
{
    Instruction i = decode("tex.1d.u32 r2, [t]");
    EXPECT_EQ(i.opcode, Opcode::Tex);
    EXPECT_EQ(i.proxy, ProxyKind::Texture);
    EXPECT_EQ(i.destReg, "r2");
}

TEST(Decode, ConstantLoad)
{
    Instruction i = decode("ld.const.u32 r3, [c]");
    EXPECT_EQ(i.opcode, Opcode::Ld);
    EXPECT_EQ(i.proxy, ProxyKind::Constant);
    EXPECT_EQ(i.sem, Semantics::Weak);
}

TEST(Decode, AcquireLoadRequiresScope)
{
    Instruction i = decode("ld.acquire.gpu.u32 r5, [rd4]");
    EXPECT_EQ(i.sem, Semantics::Acquire);
    EXPECT_EQ(i.scope, Scope::Gpu);
    EXPECT_THROW(decode("ld.acquire.u32 r5, [rd4]"), FatalError);
}

TEST(Decode, ReleaseStore)
{
    Instruction i = decode("st.release.cta.u32 [rd4], 1");
    EXPECT_EQ(i.sem, Semantics::Release);
    EXPECT_EQ(i.scope, Scope::Cta);
}

TEST(Decode, InvalidSemanticsRejected)
{
    EXPECT_THROW(decode("ld.release.gpu.u32 r1, [x]"), FatalError);
    EXPECT_THROW(decode("st.acquire.gpu.u32 [x], 1"), FatalError);
    EXPECT_THROW(decode("st.const.u32 [x], 1"), FatalError);
    EXPECT_THROW(decode("ld.const.relaxed.gpu.u32 r1, [x]"), FatalError);
    EXPECT_THROW(decode("tex.acquire.gpu.u32 r1, [x]"), FatalError);
}

TEST(Decode, WeakOpsCannotCarryScope)
{
    EXPECT_THROW(decode("ld.global.weak.gpu.u32 r1, [x]"), FatalError);
}

TEST(Decode, VolatileMapsToRelaxedSys)
{
    Instruction i = decode("ld.volatile.u32 r1, [x]");
    EXPECT_EQ(i.sem, Semantics::Relaxed);
    EXPECT_EQ(i.scope, Scope::Sys);
}

TEST(Decode, AtomDefaultsToRelaxedGpu)
{
    Instruction i = decode("atom.add.u32 r1, [x], 1");
    EXPECT_EQ(i.opcode, Opcode::Atom);
    EXPECT_EQ(i.sem, Semantics::Relaxed);
    EXPECT_EQ(i.scope, Scope::Gpu);
    EXPECT_EQ(i.atomOp, AtomOp::Add);
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isStore());
}

TEST(Decode, AtomExplicitSemantics)
{
    Instruction i = decode("atom.acq_rel.sys.exch.u32 r1, [x], 5");
    EXPECT_EQ(i.sem, Semantics::AcqRel);
    EXPECT_EQ(i.scope, Scope::Sys);
    EXPECT_EQ(i.atomOp, AtomOp::Exch);
}

TEST(Decode, AtomCasOperands)
{
    Instruction i = decode("atom.cas.u32 r1, [x], 0, 7");
    EXPECT_EQ(i.atomOp, AtomOp::Cas);
    EXPECT_TRUE(i.expected.isImm());
    EXPECT_EQ(i.expected.imm, 0u);
    EXPECT_TRUE(i.value.isImm());
    EXPECT_EQ(i.value.imm, 7u);
    EXPECT_THROW(decode("atom.cas.u32 r1, [x], 0"), FatalError);
}

TEST(Decode, AtomRejectsScAndWeak)
{
    EXPECT_THROW(decode("atom.sc.gpu.add.u32 r1, [x], 1"), FatalError);
    EXPECT_THROW(decode("atom.weak.add.u32 r1, [x], 1"), FatalError);
}

TEST(Decode, NonCoherentLoad)
{
    auto i = decode("ld.global.nc.u32 r1, [x]");
    EXPECT_EQ(i.opcode, Opcode::Ld);
    EXPECT_EQ(i.proxy, ProxyKind::Texture);
    EXPECT_EQ(i.sem, Semantics::Weak);
    EXPECT_THROW(decode("st.global.nc.u32 [x], 1"), FatalError);
    EXPECT_THROW(decode("ld.global.nc.acquire.gpu.u32 r1, [x]"),
                 FatalError);
}

TEST(Decode, Reductions)
{
    auto i = decode("red.relaxed.gpu.add.u32 [x], 1");
    EXPECT_EQ(i.opcode, Opcode::Atom);
    EXPECT_TRUE(i.destReg.empty());
    EXPECT_EQ(i.atomOp, AtomOp::Add);
    EXPECT_TRUE(i.value.isImm());
    // Defaults match atom: relaxed + gpu.
    EXPECT_EQ(decode("red.add.u32 [x], 1").sem, Semantics::Relaxed);
    EXPECT_EQ(decode("red.add.u32 [x], 1").scope, Scope::Gpu);
    EXPECT_THROW(decode("red.cas.u32 [x], 0, 1"), FatalError);
    EXPECT_THROW(decode("red.add.u32 r1, [x], 1"), FatalError);
}

TEST(Decode, FenceForms)
{
    Instruction sc = decode("fence.sc.gpu");
    EXPECT_EQ(sc.opcode, Opcode::Fence);
    EXPECT_EQ(sc.sem, Semantics::Sc);
    EXPECT_EQ(sc.scope, Scope::Gpu);

    Instruction ar = decode("fence.acq_rel.cta");
    EXPECT_EQ(ar.sem, Semantics::AcqRel);
    EXPECT_EQ(ar.scope, Scope::Cta);

    // Bare fence.scope defaults to .sc, as in PTX.
    Instruction bare = decode("fence.sys");
    EXPECT_EQ(bare.sem, Semantics::Sc);
    EXPECT_EQ(bare.scope, Scope::Sys);

    EXPECT_THROW(decode("fence.sc"), FatalError);       // missing scope
    EXPECT_THROW(decode("fence.release.gpu"), FatalError);
}

TEST(Decode, MembarLegacyAliases)
{
    EXPECT_EQ(decode("membar.cta").scope, Scope::Cta);
    EXPECT_EQ(decode("membar.gl").scope, Scope::Gpu);
    EXPECT_EQ(decode("membar.sys").scope, Scope::Sys);
    EXPECT_EQ(decode("membar.gl").sem, Semantics::Sc);
    EXPECT_THROW(decode("membar.gpu"), FatalError);
}

TEST(Decode, ProxyFences)
{
    for (auto [text, kind] :
         {std::pair{"fence.proxy.alias", ProxyFenceKind::Alias},
          std::pair{"fence.proxy.texture", ProxyFenceKind::Texture},
          std::pair{"fence.proxy.constant", ProxyFenceKind::Constant},
          std::pair{"fence.proxy.surface", ProxyFenceKind::Surface}}) {
        Instruction i = decode(text);
        EXPECT_EQ(i.opcode, Opcode::FenceProxy) << text;
        EXPECT_EQ(i.proxyFence, kind) << text;
        EXPECT_FALSE(i.isMemoryOp()) << text;
    }
    EXPECT_THROW(decode("fence.proxy"), FatalError);
    EXPECT_THROW(decode("fence.proxy.bogus"), FatalError);
}

TEST(Decode, TypeSuffixSizes)
{
    EXPECT_EQ(decode("ld.global.u64 r1, [x]").accessSize, 8u);
    EXPECT_EQ(decode("ld.global.u16 r1, [x]").accessSize, 2u);
    EXPECT_EQ(decode("ld.global.u8 r1, [x]").accessSize, 1u);
    EXPECT_EQ(decode("st.global.s32 [x], 1").accessSize, 4u);
}

TEST(Decode, MalformedInputs)
{
    EXPECT_THROW(decode(""), FatalError);
    EXPECT_THROW(decode("bogus.u32 r1, [x]"), FatalError);
    EXPECT_THROW(decode("ld.global.u32 r1"), FatalError);   // no address
    EXPECT_THROW(decode("ld.global.u32 r1, [x"), FatalError);
    EXPECT_THROW(decode("ld.global.u32 [x], [y]"), FatalError);
    EXPECT_THROW(decode("st.global.u32 [x], r1, r2"), FatalError);
    EXPECT_THROW(decode("ld.global.u32 5, [x]"), FatalError);
    EXPECT_THROW(decode("ld.global.frob.u32 r1, [x]"), FatalError);
}

TEST(Decode, HexAndNegativeImmediates)
{
    EXPECT_EQ(decode("st.global.u32 [x], 0x10").value.imm, 16u);
    EXPECT_EQ(decode("st.global.u32 [x], -1").value.imm,
              ~std::uint64_t{0});
}

TEST(Decode, SourceRegsCollectsDataAndCoords)
{
    Instruction i = decode("sust.b.1d.u32 [s, r7], r9");
    auto regs = i.sourceRegs();
    ASSERT_EQ(regs.size(), 2u);
    EXPECT_EQ(regs[0], "r9");
    EXPECT_EQ(regs[1], "r7");
}

TEST(Decode, RoundTripKeepsText)
{
    const std::string text = "st.release.cta.u32 [rd4], 1";
    EXPECT_EQ(decode(text).toString(), text);
}

// Round-trip property sweep: decoding an instruction, rendering it, and
// decoding again yields the same decoded form.
class DecodeRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DecodeRoundTrip, StableUnderRendering)
{
    Instruction first = decode(GetParam());
    Instruction second = decode(first.toString());
    EXPECT_EQ(second.opcode, first.opcode);
    EXPECT_EQ(second.sem, first.sem);
    EXPECT_EQ(second.scope, first.scope);
    EXPECT_EQ(second.proxy, first.proxy);
    EXPECT_EQ(second.proxyFence, first.proxyFence);
    EXPECT_EQ(second.address, first.address);
    EXPECT_EQ(second.srcAddress, first.srcAddress);
    EXPECT_EQ(second.destReg, first.destReg);
    EXPECT_EQ(second.value, first.value);
    EXPECT_EQ(second.expected, first.expected);
    EXPECT_EQ(second.atomOp, first.atomOp);
    EXPECT_EQ(second.accessSize, first.accessSize);
    EXPECT_EQ(second.barrierId, first.barrierId);
}

INSTANTIATE_TEST_SUITE_P(
    Surface, DecodeRoundTrip,
    ::testing::Values(
        "ld.global.u32 r1, [x]", "ld.global.u64 r1, [x]",
        "ld.global.relaxed.gpu.u32 r1, [x]",
        "ld.acquire.sys.u32 r1, [x]", "ld.const.u32 r1, [c]",
        "ld.global.nc.u32 r1, [x]", "ld.volatile.u32 r1, [x]",
        "st.global.u32 [x], 42", "st.global.u32 [x], r1",
        "st.relaxed.cta.u32 [x], 1", "st.release.sys.u32 [x], 1",
        "atom.add.u32 r1, [x], 1", "atom.acq_rel.sys.exch.u32 r1, [x], 5",
        "atom.cas.u32 r1, [x], 0, 7", "red.relaxed.gpu.add.u32 [x], 1",
        "tex.1d.u32 r1, [t]", "suld.b.u32 r1, [s]",
        "sust.b.2d.u32 [s], 9", "fence.sc.gpu", "fence.acq_rel.cta",
        "membar.gl", "fence.proxy.alias", "fence.proxy.constant.gpu",
        "fence.proxy.surface.sys", "fence.proxy.async",
        "cp.async.ca.u32 [d], [s]", "cp.async.wait_all", "bar.sync 0",
        "barrier.sync 7"));

TEST(Operand, Factories)
{
    EXPECT_TRUE(Operand::ofReg("r1").isReg());
    EXPECT_TRUE(Operand::ofImm(3).isImm());
    EXPECT_EQ(Operand::none().kind, Operand::Kind::None);
    EXPECT_EQ(Operand::ofImm(3).toString(), "3");
    EXPECT_EQ(Operand::ofReg("r1").toString(), "r1");
}

} // namespace
