/**
 * @file
 * File-driven tests: every .litmus file in tests/litmus/corpus parses,
 * validates, and passes its own assertions under the PTX 7.5 model —
 * exercising the exact path an NVLitmus user takes.
 */

#include <filesystem>

#include <gtest/gtest.h>

#include "litmus/parser.hh"
#include "model/checker.hh"

namespace {

using namespace mixedproxy;

std::vector<std::string>
corpusFiles()
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    // The corpus lives next to this source file; CMake passes its
    // absolute path.
#ifndef MIXEDPROXY_CORPUS_DIR
#error "MIXEDPROXY_CORPUS_DIR must be defined by the build"
#endif
    for (const auto &entry :
         fs::directory_iterator(MIXEDPROXY_CORPUS_DIR)) {
        if (entry.path().extension() == ".litmus")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

class CorpusFile : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CorpusFile, ParsesAndPasses)
{
    auto test = litmus::parseTestFile(GetParam());
    EXPECT_FALSE(test.assertions().empty());
    model::CheckOptions opts;
    opts.collectWitnesses = false;
    auto result = model::Checker(opts).check(test);
    EXPECT_TRUE(result.allPassed()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Files, CorpusFile, ::testing::ValuesIn(corpusFiles()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        auto name = std::filesystem::path(info.param).stem().string();
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(CorpusDirectory, HasFiles)
{
    EXPECT_GE(corpusFiles().size(), 5u);
}

} // namespace
