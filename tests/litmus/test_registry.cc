/**
 * @file
 * Unit tests for the built-in litmus-test registry.
 */

#include <set>

#include <gtest/gtest.h>

#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy::litmus;
using mixedproxy::FatalError;

TEST(Registry, NonEmptyAndUniqueNames)
{
    const auto &tests = allTests();
    ASSERT_GE(tests.size(), 30u);
    std::set<std::string> names;
    for (const auto &test : tests)
        EXPECT_TRUE(names.insert(test.name()).second)
            << "duplicate test name " << test.name();
}

TEST(Registry, AllTestsValidate)
{
    for (const auto &test : allTests())
        EXPECT_NO_THROW(test.validate()) << test.name();
}

TEST(Registry, EveryTestHasAssertions)
{
    for (const auto &test : allTests())
        EXPECT_FALSE(test.assertions().empty()) << test.name();
}

TEST(Registry, LookupByName)
{
    const auto &test = testByName("fig8a_alias_fence");
    EXPECT_EQ(test.name(), "fig8a_alias_fence");
    EXPECT_TRUE(hasTest("fig2_iriw_weak"));
    EXPECT_FALSE(hasTest("no_such_test"));
    EXPECT_THROW(testByName("no_such_test"), FatalError);
}

TEST(Registry, PaperFiguresPresent)
{
    for (const char *name :
         {"fig2_iriw_weak", "fig2_iriw_fence_sc",
          "fig4_const_alias_generic_fence", "fig4_const_alias_proxy_fence",
          "fig8a_alias_fence", "fig8b_constant_fence",
          "fig8c_two_thread_constant", "fig8d_fence_at_release",
          "fig8e_cross_cta_wrong_side", "fig8f_double_fence_ordered",
          "fig9_message_passing"}) {
        EXPECT_TRUE(hasTest(name)) << name;
    }
}

TEST(Registry, FigurePrefixSelection)
{
    auto fig8 = testsForFigure("fig8");
    EXPECT_GE(fig8.size(), 6u);
    for (const auto &test : fig8)
        EXPECT_EQ(test.name().substr(0, 4), "fig8");
}

TEST(Registry, NamesMatchOrder)
{
    auto names = testNames();
    const auto &tests = allTests();
    ASSERT_EQ(names.size(), tests.size());
    for (std::size_t i = 0; i < names.size(); i++)
        EXPECT_EQ(names[i], tests[i].name());
}

TEST(Registry, RegistryTestsRoundTripThroughText)
{
    // Every registry test should survive print-then-parse.
    for (const auto &test : allTests()) {
        LitmusTest again = mixedproxy::litmus::parseTest(test.toString());
        EXPECT_EQ(again.name(), test.name());
        EXPECT_EQ(again.instructionCount(), test.instructionCount())
            << test.name();
    }
}

} // namespace
