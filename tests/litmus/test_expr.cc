/**
 * @file
 * Unit tests for condition expressions and the condition parser.
 */

#include <gtest/gtest.h>

#include "litmus/expr.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy::litmus;
using mixedproxy::FatalError;
using mixedproxy::PanicError;

Outcome
sampleOutcome()
{
    Outcome o;
    o.registers["t0.r1"] = 1;
    o.registers["t1.r2"] = 42;
    o.memory["x"] = 7;
    return o;
}

TEST(Expr, LiteralAndReferences)
{
    Outcome o = sampleOutcome();
    EXPECT_EQ(Expr::literal(5)->evalValue(o), 5u);
    EXPECT_EQ(Expr::reg("t0", "r1")->evalValue(o), 1u);
    EXPECT_EQ(Expr::mem("x")->evalValue(o), 7u);
}

TEST(Expr, MissingReferencesThrow)
{
    Outcome o = sampleOutcome();
    EXPECT_THROW(Expr::reg("t9", "r9")->evalValue(o), FatalError);
    EXPECT_THROW(Expr::mem("nope")->evalValue(o), FatalError);
}

TEST(Expr, Comparisons)
{
    Outcome o = sampleOutcome();
    EXPECT_TRUE(
        Expr::eq(Expr::reg("t1", "r2"), Expr::literal(42))->evalBool(o));
    EXPECT_FALSE(
        Expr::eq(Expr::reg("t0", "r1"), Expr::literal(42))->evalBool(o));
    EXPECT_TRUE(
        Expr::ne(Expr::mem("x"), Expr::literal(0))->evalBool(o));
}

TEST(Expr, Connectives)
{
    Outcome o = sampleOutcome();
    auto t = Expr::alwaysTrue();
    auto f = Expr::logicalNot(Expr::alwaysTrue());
    EXPECT_TRUE(Expr::logicalAnd(t, t)->evalBool(o));
    EXPECT_FALSE(Expr::logicalAnd(t, f)->evalBool(o));
    EXPECT_TRUE(Expr::logicalOr(f, t)->evalBool(o));
    EXPECT_FALSE(Expr::logicalOr(f, f)->evalBool(o));
    EXPECT_TRUE(Expr::logicalNot(f)->evalBool(o));
}

TEST(Expr, TypeDisciplineEnforced)
{
    EXPECT_THROW(Expr::eq(Expr::alwaysTrue(), Expr::literal(1)),
                 PanicError);
    EXPECT_THROW(Expr::logicalAnd(Expr::literal(1), Expr::alwaysTrue()),
                 PanicError);
    EXPECT_THROW(Expr::logicalNot(Expr::literal(1)), PanicError);
    Outcome o = sampleOutcome();
    EXPECT_THROW(Expr::literal(1)->evalBool(o), PanicError);
    EXPECT_THROW(Expr::alwaysTrue()->evalValue(o), PanicError);
}

TEST(ConditionParser, SimpleComparison)
{
    Outcome o = sampleOutcome();
    EXPECT_TRUE(parseCondition("t1.r2 == 42")->evalBool(o));
    EXPECT_FALSE(parseCondition("t1.r2 != 42")->evalBool(o));
    EXPECT_TRUE(parseCondition("[x] == 7")->evalBool(o));
}

TEST(ConditionParser, PrecedenceAndGrouping)
{
    Outcome o = sampleOutcome();
    // && binds tighter than ||.
    EXPECT_TRUE(
        parseCondition("t0.r1 == 0 && t1.r2 == 0 || [x] == 7")
            ->evalBool(o));
    EXPECT_FALSE(
        parseCondition("t0.r1 == 0 && (t1.r2 == 0 || [x] == 7)")
            ->evalBool(o));
}

TEST(ConditionParser, Negation)
{
    Outcome o = sampleOutcome();
    EXPECT_TRUE(parseCondition("!(t0.r1 == 0)")->evalBool(o));
    EXPECT_FALSE(parseCondition("!(t0.r1 == 1)")->evalBool(o));
    EXPECT_TRUE(parseCondition("!!(t0.r1 == 1)")->evalBool(o));
}

TEST(ConditionParser, HexLiterals)
{
    Outcome o;
    o.registers["t0.r1"] = 255;
    EXPECT_TRUE(parseCondition("t0.r1 == 0xff")->evalBool(o));
}

TEST(ConditionParser, Whitespace)
{
    Outcome o = sampleOutcome();
    EXPECT_TRUE(parseCondition("  t1.r2==42  ")->evalBool(o));
}

TEST(ConditionParser, Malformed)
{
    EXPECT_THROW(parseCondition(""), FatalError);
    EXPECT_THROW(parseCondition("t0.r1"), FatalError);
    EXPECT_THROW(parseCondition("t0.r1 == "), FatalError);
    EXPECT_THROW(parseCondition("t0.r1 = 1"), FatalError);
    EXPECT_THROW(parseCondition("(t0.r1 == 1"), FatalError);
    EXPECT_THROW(parseCondition("t0.r1 == 1 &&"), FatalError);
    EXPECT_THROW(parseCondition("t0.r1 == 1 extra"), FatalError);
    EXPECT_THROW(parseCondition("[x == 1"), FatalError);
    EXPECT_THROW(parseCondition("t0r1 == 1"), FatalError);
}

TEST(ConditionParser, RoundTripToString)
{
    auto e = parseCondition("!(t0.r1 == 1) || t1.r2 != 3 && [x] == 0");
    Outcome o;
    o.registers["t0.r1"] = 1;
    o.registers["t1.r2"] = 3;
    o.memory["x"] = 0;
    // Re-parse the rendering and check it evaluates identically.
    auto e2 = parseCondition(e->toString());
    EXPECT_EQ(e->evalBool(o), e2->evalBool(o));
}

TEST(Outcome, OrderingAndToString)
{
    Outcome a = sampleOutcome();
    Outcome b = sampleOutcome();
    EXPECT_EQ(a, b);
    b.registers["t0.r1"] = 2;
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
    EXPECT_EQ(a.toString(), "t0.r1=1 t1.r2=42 [x]=7");
}

} // namespace
