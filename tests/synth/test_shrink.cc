/**
 * @file
 * Tests for litmus-test shrinking and the structural mutations.
 */

#include <filesystem>

#include <gtest/gtest.h>

#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "relation/error.hh"
#include "synth/generator.hh"
#include "synth/mutate.hh"
#include "synth/shrink.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::synth;
using litmus::LitmusBuilder;

TEST(Mutate, WithoutInstruction)
{
    auto test = LitmusBuilder("m")
                    .alias("c", "x")
                    .init("x", 3)
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "fence.proxy.constant",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t0.r1 == 1")
                    .build();
    auto reduced = withoutInstruction(test, 0, 1);
    ASSERT_EQ(reduced.threads().size(), 1u);
    EXPECT_EQ(reduced.threads()[0].instructions.size(), 2u);
    // The address map and init survive.
    EXPECT_EQ(reduced.locationOf("c"), "x");
    EXPECT_EQ(reduced.initOf("x"), 3u);
    // Assertions are not copied.
    EXPECT_TRUE(reduced.assertions().empty());
    EXPECT_THROW(withoutInstruction(test, 0, 9), PanicError);
    EXPECT_THROW(withoutInstruction(test, 2, 0), PanicError);
}

TEST(Mutate, EmptiedThreadIsDropped)
{
    auto test = LitmusBuilder("m2")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto reduced = withoutInstruction(test, 0, 0);
    ASSERT_EQ(reduced.threads().size(), 1u);
    EXPECT_EQ(reduced.threads()[0].name, "t1");
}

TEST(Mutate, WithoutThread)
{
    auto test = LitmusBuilder("m3")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto reduced = withoutThread(test, 0);
    ASSERT_EQ(reduced.threads().size(), 1u);
    EXPECT_EQ(reduced.threads()[0].name, "t1");
}

TEST(Shrink, MinimizesFig4WithJunk)
{
    // Fig. 4 buried under unrelated instructions: the shrinker should
    // recover the two-instruction core while preserving
    // proxy-sensitivity.
    auto bloated = LitmusBuilder("bloated")
                       .alias("c", "g")
                       .thread("t0", 0, 0,
                               {"ld.global.u32 r9, [z]",
                                "st.global.u32 [g], 42",
                                "st.global.u32 [z], 5",
                                "ld.const.u32 r1, [c]",
                                "ld.global.u32 r2, [z]"})
                       .thread("t1", 1, 0, {"ld.global.u32 r1, [z]"})
                       .permit("t0.r1 == 0")
                       .build();
    ShrinkStats stats;
    auto minimal =
        shrink(bloated, proxySensitivityPredicate(), &stats);
    EXPECT_EQ(minimal.instructionCount(), 2u) << minimal.toString();
    EXPECT_EQ(minimal.threads().size(), 1u);
    EXPECT_GT(stats.removalsAccepted, 0u);
    EXPECT_GE(stats.candidatesTried, stats.removalsAccepted);
}

TEST(Shrink, PredicateMustHoldInitially)
{
    auto test = LitmusBuilder("nope")
                    .thread("t0", 0, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 0")
                    .build();
    EXPECT_THROW(
        shrink(test, [](const litmus::LitmusTest &) { return false; }),
        FatalError);
}

TEST(Shrink, AdmitsPredicateKeepsReferencedRegisters)
{
    // Shrinking under "t1.r2 can read 0 after the handshake" must keep
    // the instructions the condition references.
    auto test = LitmusBuilder("mp_shrink")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"ld.global.u32 r9, [y]",
                                         "st.global.u32 [x], 42",
                                         "st.release.gpu.u32 [f], 1"})
                    .thread("t1", 1, 0, {"ld.acquire.gpu.u32 r1, [f]",
                                         "ld.const.u32 r2, [c]",
                                         "ld.global.u32 r3, [y]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto minimal = shrink(
        test, admitsPredicate("t1.r1 == 1 && t1.r2 == 0"));
    // The junk loads of y disappear, and so does the payload store
    // (the condition doesn't force r2 to be fresh); what remains is
    // the handshake plus the constant read the condition names.
    EXPECT_EQ(minimal.instructionCount(), 3u) << minimal.toString();
    for (const auto &thread : minimal.threads()) {
        for (const auto &instr : thread.instructions) {
            EXPECT_NE(test.locationOf(instr.address), "y")
                << instr.toString();
        }
    }
}

TEST(Shrink, FixpointIsStable)
{
    const auto &test = litmus::testByName("fig4_const_alias_nofence");
    auto predicate = proxySensitivityPredicate();
    auto once = shrink(test, predicate);
    auto twice = shrink(once, predicate);
    EXPECT_EQ(once.instructionCount(), twice.instructionCount());
}

TEST(SuiteExport, WritesClassifiedLitmusFiles)
{
    SynthOptions opts;
    opts.instructions = 2;
    opts.maxThreads = 2;
    opts.withProxies = true;
    auto report = Synthesizer(opts).run();
    ASSERT_GT(report.interesting.size(), 0u);

    const std::string dir = "synth_suite_tmp";
    std::size_t written = report.writeSuite(dir);
    EXPECT_EQ(written, report.interesting.size());

    // Every emitted file parses back and matches its header.
    std::size_t parsed = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        auto test = litmus::parseTestFile(entry.path().string());
        EXPECT_GT(test.instructionCount(), 0u);
        parsed++;
    }
    EXPECT_EQ(parsed, written);
    std::filesystem::remove_all(dir);
}

} // namespace
