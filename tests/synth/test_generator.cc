/**
 * @file
 * Unit and property tests for the litmus-test synthesizer (§6.3).
 */

#include <gtest/gtest.h>

#include "model/checker.hh"
#include "relation/error.hh"
#include "synth/generator.hh"
#include "synth/sc_reference.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::synth;

SynthOptions
smallOptions(std::size_t instructions, bool with_proxies)
{
    SynthOptions opts;
    opts.instructions = instructions;
    opts.maxThreads = 2;
    opts.maxLocations = 2;
    opts.withProxies = with_proxies;
    opts.withAtomics = false;
    return opts;
}

TEST(Synthesizer, RejectsBadOptions)
{
    SynthOptions opts;
    opts.maxLocations = 3;
    EXPECT_THROW(Synthesizer{opts}, FatalError);
    opts = SynthOptions{};
    opts.instructions = 0;
    EXPECT_THROW(Synthesizer{opts}, FatalError);
    opts = SynthOptions{};
    opts.maxThreads = 0;
    EXPECT_THROW(Synthesizer{opts}, FatalError);
}

TEST(Synthesizer, TwoInstructionRunFindsTheFig4Race)
{
    // With the proxy alphabet, a 2-instruction single-thread program
    // (store + constant alias load) is already proxy-sensitive.
    auto report = Synthesizer(smallOptions(2, true)).run();
    EXPECT_GT(report.stats.uniquePrograms, 0u);
    EXPECT_GT(report.stats.proxySensitive, 0u) << report.summary();
    bool found = false;
    for (const auto &entry : report.interesting) {
        if (entry.proxySensitive && entry.ptx75Outcomes == 2 &&
            entry.ptx60Outcomes == 1) {
            found = true;
        }
    }
    EXPECT_TRUE(found) << report.summary();
}

TEST(Synthesizer, NoProxyAlphabetFindsNoProxySensitivity)
{
    auto report = Synthesizer(smallOptions(3, false)).run();
    EXPECT_EQ(report.stats.proxySensitive, 0u) << report.summary();
}

TEST(Synthesizer, FindsWeakBehaviorsAtFourInstructions)
{
    // Message passing / store buffering shapes appear at n == 4.
    auto opts = smallOptions(4, false);
    opts.classifyFenceMinimal = false; // keep the test fast
    auto report = Synthesizer(opts).run();
    EXPECT_GT(report.stats.weak, 0u) << report.summary();
}

TEST(Synthesizer, DedupReducesPrograms)
{
    auto report = Synthesizer(smallOptions(2, false)).run();
    EXPECT_LT(report.stats.uniquePrograms, report.stats.afterPruning)
        << report.summary();
    EXPECT_LE(report.stats.afterPruning,
              report.stats.programsEnumerated);
}

TEST(Synthesizer, MaxUniqueProgramsStopsEarly)
{
    auto opts = smallOptions(3, true);
    opts.maxUniquePrograms = 5;
    auto report = Synthesizer(opts).run();
    EXPECT_EQ(report.stats.uniquePrograms, 5u);
}

TEST(Synthesizer, GeneratedTestsAreWellFormed)
{
    auto opts = smallOptions(3, true);
    opts.maxUniquePrograms = 50;
    auto report = Synthesizer(opts).run();
    for (const auto &entry : report.interesting) {
        EXPECT_NO_THROW(entry.test.validate()) << entry.test.toString();
        EXPECT_GE(entry.ptx75Outcomes, 1u);
    }
}

TEST(Synthesizer, InterestingTestsSatisfyScSubset)
{
    // Spot-check the synthesized corpus against the SC oracle.
    auto opts = smallOptions(3, true);
    opts.maxUniquePrograms = 40;
    auto report = Synthesizer(opts).run();
    model::CheckOptions mopts;
    mopts.collectWitnesses = false;
    model::Checker checker(mopts);
    for (const auto &entry : report.interesting) {
        auto allowed = checker.check(entry.test).outcomes;
        for (const auto &outcome : scOutcomes(entry.test)) {
            EXPECT_TRUE(allowed.count(outcome))
                << entry.test.toString() << outcome.toString();
        }
    }
}

TEST(Synthesizer, SummaryMentionsCounts)
{
    auto report = Synthesizer(smallOptions(2, false)).run();
    auto text = report.summary();
    EXPECT_NE(text.find("unique"), std::string::npos);
    EXPECT_NE(text.find("proxy-sensitive"), std::string::npos);
}

TEST(Synthesizer, AsyncAlphabetFindsAsyncSensitivity)
{
    // st [y]; cp.async [x],[y]; wait: PTX 7.5 lets the copy engine read
    // the stale source; PTX 6.0 (async proxy erased) does not.
    SynthOptions opts;
    opts.instructions = 3;
    opts.maxThreads = 1;
    opts.withProxies = false;
    opts.withFences = false;
    opts.withReleaseAcquire = false;
    opts.withAsync = true;
    opts.classifyFenceMinimal = false;
    auto report = Synthesizer(opts).run();
    EXPECT_GT(report.stats.proxySensitive, 0u) << report.summary();
    bool has_async = false;
    for (const auto &entry : report.interesting) {
        for (const auto &thread : entry.test.threads()) {
            for (const auto &instr : thread.instructions) {
                has_async |=
                    instr.opcode == litmus::Opcode::CpAsync;
            }
        }
    }
    EXPECT_TRUE(has_async);
}

TEST(Synthesizer, BarrierAlphabetValidatesAndRuns)
{
    SynthOptions opts;
    opts.instructions = 3;
    opts.maxThreads = 2;
    opts.withProxies = false;
    opts.withFences = false;
    opts.withReleaseAcquire = false;
    opts.withBarriers = true;
    opts.classifyFenceMinimal = false;
    auto report = Synthesizer(opts).run();
    // Mismatched-barrier programs are silently skipped; the rest
    // check cleanly.
    EXPECT_GT(report.stats.checked, 0u) << report.summary();
    for (const auto &entry : report.interesting)
        EXPECT_NO_THROW(entry.test.validate());
}

TEST(Synthesizer, ParallelRunMatchesSerialRun)
{
    // The determinism contract: --jobs N reproduces the serial report
    // exactly — same stats, same interesting tests in the same order
    // with the same names and classifications. Only the wall-clock
    // seconds figure may differ.
    auto opts = smallOptions(3, true);
    auto serial = Synthesizer(opts).run();
    opts.jobs = 4;
    auto parallel = Synthesizer(opts).run();

    EXPECT_EQ(serial.stats.programsEnumerated,
              parallel.stats.programsEnumerated);
    EXPECT_EQ(serial.stats.afterPruning, parallel.stats.afterPruning);
    EXPECT_EQ(serial.stats.uniquePrograms,
              parallel.stats.uniquePrograms);
    EXPECT_EQ(serial.stats.checked, parallel.stats.checked);
    EXPECT_EQ(serial.stats.skippedTooExpensive,
              parallel.stats.skippedTooExpensive);
    EXPECT_EQ(serial.stats.weak, parallel.stats.weak);
    EXPECT_EQ(serial.stats.proxySensitive,
              parallel.stats.proxySensitive);
    EXPECT_EQ(serial.stats.fenceMinimal, parallel.stats.fenceMinimal);

    ASSERT_EQ(serial.interesting.size(), parallel.interesting.size());
    for (std::size_t i = 0; i < serial.interesting.size(); i++) {
        const auto &a = serial.interesting[i];
        const auto &b = parallel.interesting[i];
        EXPECT_EQ(a.test.name(), b.test.name()) << "entry " << i;
        EXPECT_EQ(a.test.toString(), b.test.toString());
        EXPECT_EQ(a.weak, b.weak);
        EXPECT_EQ(a.proxySensitive, b.proxySensitive);
        EXPECT_EQ(a.fenceMinimal, b.fenceMinimal);
        EXPECT_EQ(a.ptx75Outcomes, b.ptx75Outcomes);
        EXPECT_EQ(a.ptx60Outcomes, b.ptx60Outcomes);
        EXPECT_EQ(a.scOutcomeCount, b.scOutcomeCount);
    }
}

TEST(Synthesizer, PresolvePruningPreservesTheReportExactly)
{
    // The pruning-oracle contract (docs/static_solver.md): skipping
    // the checks the pre-solver proves redundant changes nothing but
    // the wall clock. Same stats, same interesting tests in the same
    // order with the same classifications and outcome counts — and
    // the same summary text (modulo the seconds figure, which we keep
    // out of the comparison by comparing fields, not strings).
    auto opts = smallOptions(3, true);
    opts.presolve = false;
    auto baseline = Synthesizer(opts).run();
    opts.presolve = true;
    auto pruned = Synthesizer(opts).run();

    EXPECT_EQ(baseline.stats.programsEnumerated,
              pruned.stats.programsEnumerated);
    EXPECT_EQ(baseline.stats.afterPruning, pruned.stats.afterPruning);
    EXPECT_EQ(baseline.stats.uniquePrograms,
              pruned.stats.uniquePrograms);
    EXPECT_EQ(baseline.stats.checked, pruned.stats.checked);
    EXPECT_EQ(baseline.stats.skippedTooExpensive,
              pruned.stats.skippedTooExpensive);
    EXPECT_EQ(baseline.stats.weak, pruned.stats.weak);
    EXPECT_EQ(baseline.stats.proxySensitive,
              pruned.stats.proxySensitive);
    EXPECT_EQ(baseline.stats.fenceMinimal, pruned.stats.fenceMinimal);

    // The oracle must actually skip work, and only when enabled.
    EXPECT_EQ(baseline.stats.presolvePrunedPtx60, 0u);
    EXPECT_EQ(baseline.stats.presolvePrunedFenceChecks, 0u);
    EXPECT_GT(pruned.stats.presolvePrunedPtx60, 0u);
    EXPECT_GT(pruned.stats.presolvePrunedFenceChecks, 0u);

    ASSERT_EQ(baseline.interesting.size(), pruned.interesting.size());
    for (std::size_t i = 0; i < baseline.interesting.size(); i++) {
        const auto &a = baseline.interesting[i];
        const auto &b = pruned.interesting[i];
        EXPECT_EQ(a.test.name(), b.test.name()) << "entry " << i;
        EXPECT_EQ(a.test.toString(), b.test.toString());
        EXPECT_EQ(a.weak, b.weak);
        EXPECT_EQ(a.proxySensitive, b.proxySensitive);
        EXPECT_EQ(a.fenceMinimal, b.fenceMinimal);
        EXPECT_EQ(a.ptx75Outcomes, b.ptx75Outcomes);
        EXPECT_EQ(a.ptx60Outcomes, b.ptx60Outcomes);
        EXPECT_EQ(a.scOutcomeCount, b.scOutcomeCount);
    }
}

TEST(Synthesizer, ParallelRunRespectsMaxUniquePrograms)
{
    auto opts = smallOptions(3, true);
    opts.maxUniquePrograms = 5;
    opts.jobs = 4;
    auto report = Synthesizer(opts).run();
    EXPECT_EQ(report.stats.uniquePrograms, 5u);
}

TEST(Synthesizer, GrowthIsExponential)
{
    // The §6.3 scaling claim, in miniature: the enumeration grows by
    // more than 3x per added instruction.
    auto opts2 = smallOptions(2, false);
    opts2.classifyFenceMinimal = false;
    auto opts3 = smallOptions(3, false);
    opts3.classifyFenceMinimal = false;
    auto r2 = Synthesizer(opts2).run();
    auto r3 = Synthesizer(opts3).run();
    EXPECT_GT(r3.stats.programsEnumerated,
              3 * r2.stats.programsEnumerated);
}

} // namespace
