/**
 * @file
 * Randomized cross-validation: the synthesizer generates programs the
 * registry authors never thought of; every one of them must still
 * satisfy the soundness properties that tie the operational machine to
 * the axiomatic model. This is the closest analogue of the paper's
 * "automatically generated litmus tests ... provided evidence that the
 * new proxy memory model behaved as expected" (§6.3).
 */

#include <gtest/gtest.h>

#include "microarch/simulator.hh"
#include "model/checker.hh"
#include "synth/generator.hh"
#include "synth/sc_reference.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::synth;

std::vector<litmus::LitmusTest>
synthesizedCorpus()
{
    SynthOptions opts;
    opts.instructions = 3;
    opts.maxThreads = 2;
    opts.maxLocations = 2;
    opts.withProxies = true;
    opts.classifyFenceMinimal = false;
    opts.classifyAgainstSc = false;
    opts.classifyAgainstPtx60 = true; // keep only interesting ones
    auto report = Synthesizer(opts).run();
    std::vector<litmus::LitmusTest> out;
    for (const auto &entry : report.interesting) {
        out.push_back(entry.test);
        if (out.size() >= 120)
            break;
    }
    return out;
}

TEST(SynthCrossValidation, OperationalSoundnessOnSynthesizedTests)
{
    model::CheckOptions mopts;
    mopts.collectWitnesses = false;
    model::Checker checker(mopts);

    microarch::SimOptions sopts;
    sopts.iterations = 60;
    sopts.seed = 424242;
    microarch::Simulator simulator(sopts);

    auto corpus = synthesizedCorpus();
    ASSERT_GE(corpus.size(), 50u);
    for (const auto &test : corpus) {
        auto allowed = checker.check(test).outcomes;
        auto sim = simulator.run(test);
        for (const auto &[outcome, count] : sim.histogram) {
            ASSERT_TRUE(allowed.count(outcome))
                << test.toString()
                << "machine-only outcome: " << outcome.toString();
        }
    }
}

TEST(SynthCrossValidation, ScLegalityOnSynthesizedTests)
{
    model::CheckOptions mopts;
    mopts.collectWitnesses = false;
    model::Checker checker(mopts);

    auto corpus = synthesizedCorpus();
    for (const auto &test : corpus) {
        auto allowed = checker.check(test).outcomes;
        for (const auto &outcome : scOutcomes(test)) {
            ASSERT_TRUE(allowed.count(outcome))
                << test.toString()
                << "SC outcome not allowed: " << outcome.toString();
        }
    }
}

TEST(SynthCrossValidation, RelaxationOnSynthesizedTests)
{
    model::CheckOptions o75;
    o75.collectWitnesses = false;
    model::CheckOptions o60 = o75;
    o60.mode = model::ProxyMode::Ptx60;
    model::Checker c75(o75);
    model::Checker c60(o60);

    auto corpus = synthesizedCorpus();
    for (const auto &test : corpus) {
        auto a75 = c75.check(test).outcomes;
        auto a60 = c60.check(test).outcomes;
        for (const auto &outcome : a60) {
            ASSERT_TRUE(a75.count(outcome))
                << test.toString() << "PTX 6.0 outcome missing: "
                << outcome.toString();
        }
    }
}

} // namespace
