/**
 * @file
 * Unit tests for the SC reference executor, plus the oracle property
 * that SC outcomes are always admitted by both PTX model variants.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "model/checker.hh"
#include "synth/sc_reference.hh"

namespace {

using namespace mixedproxy;
using litmus::LitmusBuilder;
using synth::scOutcomes;

TEST(ScReference, SingleThreadIsDeterministic)
{
    auto test = LitmusBuilder("seq")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r1, [x]",
                                         "st.global.u32 [x], 2"})
                    .permit("t0.r1 == 1")
                    .build();
    auto outcomes = scOutcomes(test);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->reg("t0", "r1"), 1u);
    EXPECT_EQ(outcomes.begin()->mem("x"), 2u);
}

TEST(ScReference, MessagePassingInterleavings)
{
    auto test = LitmusBuilder("mp")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "st.global.u32 [y], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto outcomes = scOutcomes(test);
    // SC admits exactly three register combinations: 0/0, 0/42, 1/42.
    EXPECT_EQ(outcomes.size(), 3u);
    for (const auto &outcome : outcomes) {
        EXPECT_FALSE(outcome.reg("t1", "r1") == 1 &&
                     outcome.reg("t1", "r2") == 0)
            << outcome.toString();
    }
}

TEST(ScReference, StoreBufferingForbiddenUnderSc)
{
    auto test = LitmusBuilder("sb")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r1, [y]"})
                    .thread("t1", 1, 0, {"st.global.u32 [y], 1",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t0.r1 == 1")
                    .build();
    for (const auto &outcome : scOutcomes(test)) {
        EXPECT_FALSE(outcome.reg("t0", "r1") == 0 &&
                     outcome.reg("t1", "r2") == 0)
            << outcome.toString();
    }
}

TEST(ScReference, AliasesResolveToOneCell)
{
    auto test = LitmusBuilder("alias")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t0.r1 == 42")
                    .build();
    auto outcomes = scOutcomes(test);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->reg("t0", "r1"), 42u);
}

TEST(ScReference, AtomicsAndCas)
{
    auto test = LitmusBuilder("atom")
                    .thread("t0", 0, 0, {"atom.cas.u32 r1, [x], 0, 1"})
                    .thread("t1", 1, 0, {"atom.cas.u32 r2, [x], 0, 2"})
                    .permit("t0.r1 == 0")
                    .build();
    auto outcomes = scOutcomes(test);
    EXPECT_EQ(outcomes.size(), 2u); // one winner each way
    for (const auto &outcome : outcomes) {
        EXPECT_FALSE(outcome.reg("t0", "r1") == 0 &&
                     outcome.reg("t1", "r2") == 0);
    }
}

TEST(ScReference, InitValuesRespected)
{
    auto test = LitmusBuilder("init")
                    .init("x", 5)
                    .thread("t0", 0, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 5")
                    .build();
    auto outcomes = scOutcomes(test);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes.begin()->reg("t0", "r1"), 5u);
}

// SC is a legal implementation of PTX: every SC outcome must be allowed
// by both model variants, on the entire corpus.
class ScIsLegal : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScIsLegal, ScOutcomesAllowedByBothModels)
{
    const auto &test = litmus::testByName(GetParam());
    auto sc = scOutcomes(test);
    for (auto mode : {model::ProxyMode::Ptx75, model::ProxyMode::Ptx60}) {
        model::CheckOptions opts;
        opts.mode = mode;
        opts.collectWitnesses = false;
        auto allowed = model::Checker(opts).check(test).outcomes;
        for (const auto &outcome : sc) {
            EXPECT_TRUE(allowed.count(outcome))
                << test.name() << " [" << model::toString(mode)
                << "]: SC outcome not allowed: " << outcome.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ScIsLegal, ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
