/**
 * @file
 * Unit tests for CTA execution barriers (bar.sync): decoding,
 * validation, the rendezvous relation, and causality semantics.
 */

#include <gtest/gtest.h>

#include "litmus/instruction.hh"
#include "litmus/test.hh"
#include "model/checker.hh"
#include "model/program.hh"
#include "relation/error.hh"
#include "synth/sc_reference.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::model;
using litmus::LitmusBuilder;

TEST(BarrierDecode, Forms)
{
    auto i = litmus::decode("bar.sync 0");
    EXPECT_EQ(i.opcode, litmus::Opcode::Barrier);
    EXPECT_EQ(i.barrierId, 0u);
    EXPECT_FALSE(i.isMemoryOp());
    EXPECT_FALSE(i.isFence());

    EXPECT_EQ(litmus::decode("barrier.sync 3").barrierId, 3u);
    EXPECT_EQ(litmus::decode("bar.sync 15").barrierId, 15u);

    EXPECT_THROW(litmus::decode("bar.sync"), FatalError);
    EXPECT_THROW(litmus::decode("bar.sync 16"), FatalError);
    EXPECT_THROW(litmus::decode("bar.sync x"), FatalError);
    EXPECT_THROW(litmus::decode("bar.sync 0, 1"), FatalError);
    EXPECT_THROW(litmus::decode("bar.arrive 0"), FatalError);
}

TEST(BarrierValidation, MismatchedSequencesRejected)
{
    // Different barrier counts within one CTA deadlock.
    LitmusBuilder counts("counts");
    counts.thread("t0", 0, 0, {"bar.sync 0", "ld.global.u32 r1, [x]"});
    counts.thread("t1", 0, 0, {"ld.global.u32 r1, [x]"});
    EXPECT_THROW(counts.build(), FatalError);

    // Different barrier ids at the same index too.
    LitmusBuilder ids("ids");
    ids.thread("t0", 0, 0, {"bar.sync 0", "ld.global.u32 r1, [x]"});
    ids.thread("t1", 0, 0, {"bar.sync 1", "ld.global.u32 r1, [x]"});
    EXPECT_THROW(ids.build(), FatalError);

    // Distinct CTAs may have distinct sequences.
    LitmusBuilder ok("ok");
    ok.thread("t0", 0, 0, {"bar.sync 0", "ld.global.u32 r1, [x]"});
    ok.thread("t1", 1, 0, {"ld.global.u32 r1, [x]"});
    EXPECT_NO_THROW(ok.build());
}

TEST(BarrierProgram, RendezvousRelation)
{
    auto test = LitmusBuilder("rv")
                    .thread("t0", 0, 0, {"bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .thread("t1", 0, 0, {"bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .thread("t2", 1, 0, {"bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    std::vector<relation::EventId> barriers;
    for (const auto &e : p.events()) {
        if (e.isBarrier())
            barriers.push_back(e.id);
    }
    ASSERT_EQ(barriers.size(), 3u);
    // t0 and t1 share CTA 0: bidirectional edges.
    EXPECT_TRUE(p.barrierSync().contains(barriers[0], barriers[1]));
    EXPECT_TRUE(p.barrierSync().contains(barriers[1], barriers[0]));
    // t2 is in CTA 1: no edges to/from it.
    EXPECT_FALSE(p.barrierSync().contains(barriers[0], barriers[2]));
    EXPECT_FALSE(p.barrierSync().contains(barriers[2], barriers[1]));
    // Barriers are not morally strong with anything.
    EXPECT_FALSE(p.morallyStrong().contains(barriers[0], barriers[1]));
}

TEST(BarrierProgram, InstancesPairByIndex)
{
    auto test = LitmusBuilder("phases")
                    .thread("t0", 0, 0, {"bar.sync 0", "bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .thread("t1", 0, 0, {"bar.sync 0", "bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    std::vector<const Event *> t0_bars;
    std::vector<const Event *> t1_bars;
    for (const auto &e : p.events()) {
        if (e.isBarrier())
            (e.thread == 0 ? t0_bars : t1_bars).push_back(&e);
    }
    ASSERT_EQ(t0_bars.size(), 2u);
    ASSERT_EQ(t1_bars.size(), 2u);
    EXPECT_TRUE(
        p.barrierSync().contains(t0_bars[0]->id, t1_bars[0]->id));
    EXPECT_TRUE(
        p.barrierSync().contains(t0_bars[1]->id, t1_bars[1]->id));
    // Different instances do not rendezvous with each other.
    EXPECT_FALSE(
        p.barrierSync().contains(t0_bars[0]->id, t1_bars[1]->id));
    EXPECT_FALSE(
        p.barrierSync().contains(t0_bars[1]->id, t1_bars[0]->id));
}

TEST(BarrierChecker, CreatesIntraCtaCausality)
{
    auto test = LitmusBuilder("sync")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "bar.sync 0"})
                    .thread("t1", 0, 0, {"bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 42")
                    .build();
    auto result = model::Checker().check(test);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_EQ(result.outcomes.begin()->reg("t1", "r1"), 42u);
}

TEST(BarrierChecker, DoesNotBridgeProxies)
{
    // The rendezvous gives base causality; proxy-preserved base
    // causality still requires the proxy fence (the §4.1 kernel-fusion
    // rule).
    auto test = LitmusBuilder("proxy_gate")
                    .alias("c", "g")
                    .thread("t0", 0, 0, {"st.global.u32 [g], 7",
                                         "bar.sync 0"})
                    .thread("t1", 0, 0, {"bar.sync 0",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto result = model::Checker().check(test);
    EXPECT_TRUE(result.admits(litmus::parseCondition("t1.r1 == 0")));
    EXPECT_TRUE(result.admits(litmus::parseCondition("t1.r1 == 7")));
}

TEST(BarrierSc, InterleavingsRespectBarrier)
{
    auto test = LitmusBuilder("sc")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "bar.sync 0",
                                         "st.global.u32 [y], 1"})
                    .thread("t1", 0, 0, {"ld.global.u32 r1, [y]",
                                         "bar.sync 0",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r2 == 1")
                    .build();
    for (const auto &outcome : synth::scOutcomes(test)) {
        // r1 reads y before the barrier: never 1. r2 reads x after:
        // always 1.
        EXPECT_EQ(outcome.reg("t1", "r1"), 0u) << outcome.toString();
        EXPECT_EQ(outcome.reg("t1", "r2"), 1u) << outcome.toString();
    }
}

} // namespace
