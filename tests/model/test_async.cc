/**
 * @file
 * Unit tests for the asynchronous-copy extension (§3.1.4) and the
 * scoped proxy fence extension (§7.2): decoding, program expansion
 * (forked program order), moral strength, and checker semantics.
 */

#include <gtest/gtest.h>

#include "litmus/instruction.hh"
#include "litmus/test.hh"
#include "model/checker.hh"
#include "model/program.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::model;
using litmus::LitmusBuilder;

TEST(AsyncDecode, CpAsyncForms)
{
    auto i = litmus::decode("cp.async.ca.shared.global.u32 [d], [s]");
    EXPECT_EQ(i.opcode, litmus::Opcode::CpAsync);
    EXPECT_EQ(i.proxy, litmus::ProxyKind::Async);
    EXPECT_EQ(i.address, "d");
    EXPECT_EQ(i.srcAddress, "s");
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isStore());
    EXPECT_TRUE(i.isMemoryOp());

    auto wait = litmus::decode("cp.async.wait_all");
    EXPECT_EQ(wait.opcode, litmus::Opcode::CpAsyncWait);
    EXPECT_TRUE(wait.isFence());
    EXPECT_FALSE(wait.isMemoryOp());
}

TEST(AsyncDecode, Malformed)
{
    EXPECT_THROW(litmus::decode("cp.async.u32 [d]"), FatalError);
    EXPECT_THROW(litmus::decode("cp.async.u32 [d], [s], [t]"),
                 FatalError);
    EXPECT_THROW(litmus::decode("cp.async.u32 [d], r1"), FatalError);
    EXPECT_THROW(litmus::decode("cp.sync.u32 [d], [s]"), FatalError);
    EXPECT_THROW(litmus::decode("cp.async.bogus.u32 [d], [s]"),
                 FatalError);
    EXPECT_THROW(litmus::decode("cp.async.wait_all.u32"), FatalError);
}

TEST(ScopedFenceDecode, OptionalScope)
{
    auto plain = litmus::decode("fence.proxy.constant");
    EXPECT_EQ(plain.scope, litmus::Scope::Cta); // PTX 7.5 meaning

    auto gpu = litmus::decode("fence.proxy.constant.gpu");
    EXPECT_EQ(gpu.opcode, litmus::Opcode::FenceProxy);
    EXPECT_EQ(gpu.proxyFence, litmus::ProxyFenceKind::Constant);
    EXPECT_EQ(gpu.scope, litmus::Scope::Gpu);

    EXPECT_EQ(litmus::decode("fence.proxy.async").proxyFence,
              litmus::ProxyFenceKind::Async);
    EXPECT_THROW(litmus::decode("fence.proxy.constant.warp"),
                 FatalError);
}

namespace {

litmus::LitmusTest
asyncTest()
{
    return LitmusBuilder("async")
        .init("s", 7)
        .thread("t0", 0, 0, {"st.global.u32 [a], 1",
                             "cp.async.ca.u32 [d], [s]",
                             "st.global.u32 [b], 2",
                             "cp.async.wait_all",
                             "ld.global.u32 r1, [d]"})
        .permit("t0.r1 == 7")
        .build();
}

} // namespace

TEST(AsyncProgram, ForkedProgramOrder)
{
    Program p(asyncTest(), ProxyMode::Ptx75);
    auto find = [&](auto pred) -> const Event & {
        for (const auto &e : p.events()) {
            if (pred(e))
                return e;
        }
        throw std::logic_error("not found");
    };
    const Event &st_a = find([](const Event &e) {
        return e.isWrite() && !e.isInit && e.instrIndex == 0;
    });
    const Event &copy_r = find([](const Event &e) {
        return e.isRead() && e.isAsyncCopy();
    });
    const Event &copy_w = find([](const Event &e) {
        return e.isWrite() && e.isAsyncCopy();
    });
    const Event &st_b = find([](const Event &e) {
        return e.isWrite() && !e.isInit && e.instrIndex == 2;
    });
    const Event &join = find([](const Event &e) {
        return e.isProxyFence();
    });
    const Event &ld_d = find([](const Event &e) {
        return e.isRead() && !e.isAsyncCopy() && !e.isInit;
    });

    // Issue order: everything before the copy precedes it.
    EXPECT_TRUE(p.po().contains(st_a.id, copy_r.id));
    EXPECT_TRUE(p.po().contains(copy_r.id, copy_w.id));
    // Forked: the copy is unordered with instructions between issue and
    // join.
    EXPECT_FALSE(p.po().contains(copy_r.id, st_b.id));
    EXPECT_FALSE(p.po().contains(st_b.id, copy_r.id));
    EXPECT_FALSE(p.po().contains(copy_w.id, st_b.id));
    // The join orders the copy before everything after it.
    EXPECT_TRUE(p.po().contains(copy_w.id, join.id));
    EXPECT_TRUE(p.po().contains(copy_w.id, ld_d.id));
    EXPECT_TRUE(p.po().contains(st_b.id, join.id));
    // The copy pair carries an internal value dependency.
    EXPECT_TRUE(p.dep().contains(copy_r.id, copy_w.id));
    // The join is modeled as this CTA's async proxy fence.
    EXPECT_EQ(join.proxyFence, litmus::ProxyFenceKind::Async);
    // Async events use the async proxy, specialized by CTA.
    EXPECT_EQ(copy_r.proxy.kind, litmus::ProxyKind::Async);
    EXPECT_EQ(copy_r.proxy.cta, 0);
}

TEST(AsyncProgram, MoralStrengthUsesProgramOrderNotThreadIdentity)
{
    Program p(asyncTest(), ProxyMode::Ptx75);
    const Event *copy_w = nullptr;
    const Event *st_b = nullptr;
    for (const auto &e : p.events()) {
        if (e.isWrite() && e.isAsyncCopy())
            copy_w = &e;
        if (e.isWrite() && !e.isInit && e.instrIndex == 2)
            st_b = &e;
    }
    ASSERT_NE(copy_w, nullptr);
    ASSERT_NE(st_b, nullptr);
    // Same thread, but unordered and weak: not morally strong.
    EXPECT_FALSE(p.morallyStrong().contains(copy_w->id, st_b->id));
}

TEST(AsyncProgram, Ptx60ErasesTheAsyncProxy)
{
    Program p(asyncTest(), ProxyMode::Ptx60);
    for (const auto &e : p.events()) {
        EXPECT_NE(e.proxy.kind, litmus::ProxyKind::Async)
            << e.toString();
    }
}

TEST(AsyncChecker, WaitMakesCopyVisible)
{
    model::Checker checker;
    auto result = checker.check(asyncTest());
    for (const auto &outcome : result.outcomes)
        EXPECT_EQ(outcome.reg("t0", "r1"), 7u) << outcome.toString();
}

TEST(AsyncChecker, UnjoinedCopyRaces)
{
    auto test = LitmusBuilder("race")
                    .init("s", 7)
                    .thread("t0", 0, 0, {"cp.async.ca.u32 [d], [s]",
                                         "ld.global.u32 r1, [d]"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = model::Checker().check(test);
    bool saw0 = false;
    bool saw7 = false;
    for (const auto &outcome : result.outcomes) {
        saw0 |= outcome.reg("t0", "r1") == 0;
        saw7 |= outcome.reg("t0", "r1") == 7;
    }
    EXPECT_TRUE(saw0);
    EXPECT_TRUE(saw7);
}

TEST(AsyncChecker, TwoUnorderedCopiesToOneDestination)
{
    auto test = LitmusBuilder("two_copies")
                    .init("s1", 1)
                    .init("s2", 2)
                    .thread("t0", 0, 0, {"cp.async.ca.u32 [d], [s1]",
                                         "cp.async.ca.u32 [d], [s2]",
                                         "cp.async.wait_all",
                                         "ld.global.u32 r1, [d]"})
                    .permit("t0.r1 == 1")
                    .permit("t0.r1 == 2")
                    .build();
    auto result = model::Checker().check(test);
    EXPECT_TRUE(result.allPassed()) << result.summary();
}

TEST(ScopedFenceChecker, WiderScopeSubstitutesForRemoteFence)
{
    // fig8e's wrong-side placement, fixed by scope alone.
    auto make = [](const char *fence) {
        return LitmusBuilder("scoped")
            .alias("rd2", "rd1")
            .thread("t0", 0, 0,
                    {"st.global.u32 [rd1], 42", fence,
                     "st.release.gpu.u32 [rd4], 1"})
            .thread("t1", 1, 0, {"ld.acquire.gpu.u32 r5, [rd4]",
                                 "ld.const.u32 r3, [rd2]"})
            .permit("t1.r5 == 0")
            .build();
    };
    model::Checker checker;
    auto cta = checker.check(make("fence.proxy.constant"));
    EXPECT_TRUE(cta.admits(
        litmus::parseCondition("t1.r5 == 1 && t1.r3 == 0")));
    auto gpu = checker.check(make("fence.proxy.constant.gpu"));
    EXPECT_FALSE(gpu.admits(
        litmus::parseCondition("t1.r5 == 1 && t1.r3 == 0")));
}

TEST(ScopedFenceChecker, ScopeStillBoundsReach)
{
    // gpu scope does not reach another GPU; sys scope does.
    auto make = [](const char *fence) {
        return LitmusBuilder("scoped_xgpu")
            .alias("rd2", "rd1")
            .thread("t0", 0, 0,
                    {"st.global.u32 [rd1], 42", fence,
                     "st.release.sys.u32 [rd4], 1"})
            .thread("t1", 1, 1, {"ld.acquire.sys.u32 r5, [rd4]",
                                 "ld.const.u32 r3, [rd2]"})
            .permit("t1.r5 == 0")
            .build();
    };
    model::Checker checker;
    auto stale = litmus::parseCondition("t1.r5 == 1 && t1.r3 == 0");
    EXPECT_TRUE(
        checker.check(make("fence.proxy.constant.gpu")).admits(stale));
    EXPECT_FALSE(
        checker.check(make("fence.proxy.constant.sys")).admits(stale));
}

} // namespace
