/**
 * @file
 * Unit tests for the axiomatic checker: axiom-by-axiom behavior,
 * PTX 6.0 vs PTX 7.5 contrasts, witnesses, and statistics.
 */

#include <gtest/gtest.h>

#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "model/checker.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::model;
using litmus::LitmusBuilder;
using litmus::LitmusTest;
using litmus::parseCondition;

CheckResult
run(const LitmusTest &test, ProxyMode mode = ProxyMode::Ptx75)
{
    CheckOptions opts;
    opts.mode = mode;
    return Checker(opts).check(test);
}

bool
admits(const CheckResult &result, const std::string &condition)
{
    return result.admits(parseCondition(condition));
}

TEST(Checker, SingleThreadSameAddressCoherence)
{
    auto test = LitmusBuilder("corr")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 1")
                    .build();
    auto result = run(test);
    // The only outcome is reading one's own store.
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_TRUE(admits(result, "t0.r1 == 1"));
    EXPECT_FALSE(admits(result, "t0.r1 == 0"));
}

TEST(Checker, InitValueRespected)
{
    auto test = LitmusBuilder("init")
                    .init("x", 7)
                    .thread("t0", 0, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 7")
                    .build();
    auto result = run(test);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_TRUE(admits(result, "t0.r1 == 7 && [x] == 7"));
}

TEST(Checker, FinalMemoryFollowsCoherence)
{
    auto test = LitmusBuilder("coww")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "st.global.u32 [x], 2"})
                    .permit("[x] == 2")
                    .build();
    auto result = run(test);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_TRUE(admits(result, "[x] == 2"));
}

TEST(Checker, MessagePassingReleaseAcquire)
{
    auto test = LitmusBuilder("mp")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "st.release.cta.u32 [y], 1"})
                    .thread("t1", 0, 0, {"ld.acquire.cta.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_TRUE(admits(result, "t1.r1 == 1 && t1.r2 == 42"));
    EXPECT_TRUE(admits(result, "t1.r1 == 0 && t1.r2 == 0"));
    EXPECT_TRUE(admits(result, "t1.r1 == 0 && t1.r2 == 42"));
    // The stale-payload outcome is forbidden.
    EXPECT_FALSE(admits(result, "t1.r1 == 1 && t1.r2 == 0"));
}

TEST(Checker, MessagePassingScopeTooNarrow)
{
    auto test = LitmusBuilder("mp_narrow")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "st.release.cta.u32 [y], 1"})
                    .thread("t1", 1, 0, {"ld.acquire.cta.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_TRUE(admits(result, "t1.r1 == 1 && t1.r2 == 0"));
}

TEST(Checker, WeakFlagDoesNotSynchronize)
{
    auto test = LitmusBuilder("mp_weak")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "st.global.u32 [y], 1"})
                    .thread("t1", 0, 0, {"ld.global.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_TRUE(admits(result, "t1.r1 == 1 && t1.r2 == 0"));
}

TEST(Checker, StoreBufferingScFencesForbid)
{
    auto test = LitmusBuilder("sb")
                    .thread("t0", 0, 0, {"st.relaxed.gpu.u32 [x], 1",
                                         "fence.sc.gpu",
                                         "ld.relaxed.gpu.u32 r1, [y]"})
                    .thread("t1", 1, 0, {"st.relaxed.gpu.u32 [y], 1",
                                         "fence.sc.gpu",
                                         "ld.relaxed.gpu.u32 r2, [x]"})
                    .permit("t0.r1 == 1")
                    .build();
    auto result = run(test);
    EXPECT_FALSE(admits(result, "t0.r1 == 0 && t1.r2 == 0"));
    EXPECT_TRUE(admits(result, "t0.r1 == 1 && t1.r2 == 1"));
    EXPECT_TRUE(admits(result, "t0.r1 == 0 && t1.r2 == 1"));
}

TEST(Checker, StoreBufferingWithoutFencesAllowed)
{
    auto test = LitmusBuilder("sb_plain")
                    .thread("t0", 0, 0, {"st.relaxed.gpu.u32 [x], 1",
                                         "ld.relaxed.gpu.u32 r1, [y]"})
                    .thread("t1", 1, 0, {"st.relaxed.gpu.u32 [y], 1",
                                         "ld.relaxed.gpu.u32 r2, [x]"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_TRUE(admits(result, "t0.r1 == 0 && t1.r2 == 0"));
}

TEST(Checker, LoadBufferingAllowedWithoutDeps)
{
    auto test = LitmusBuilder("lb")
                    .thread("t0", 0, 0, {"ld.relaxed.gpu.u32 r1, [x]",
                                         "st.relaxed.gpu.u32 [y], 1"})
                    .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r2, [y]",
                                         "st.relaxed.gpu.u32 [x], 1"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_TRUE(admits(result, "t0.r1 == 1 && t1.r2 == 1"));
}

TEST(Checker, ThinAirForbiddenWithDeps)
{
    auto test = LitmusBuilder("lb_dep")
                    .thread("t0", 0, 0, {"ld.relaxed.gpu.u32 r1, [x]",
                                         "st.relaxed.gpu.u32 [y], r1"})
                    .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r2, [y]",
                                         "st.relaxed.gpu.u32 [x], r2"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_FALSE(admits(result, "t0.r1 == 1 || t1.r2 == 1"));
    EXPECT_TRUE(admits(result, "t0.r1 == 0 && t1.r2 == 0"));
}

TEST(Checker, AtomicAddsSerialize)
{
    auto test = LitmusBuilder("atoms")
                    .thread("t0", 0, 0, {"atom.add.u32 r1, [x], 1"})
                    .thread("t1", 1, 0, {"atom.add.u32 r2, [x], 1"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_FALSE(admits(result, "t0.r1 == 0 && t1.r2 == 0"));
    EXPECT_TRUE(admits(result, "t0.r1 == 0 && t1.r2 == 1"));
    EXPECT_TRUE(admits(result, "t0.r1 == 1 && t1.r2 == 0"));
    for (const auto &outcome : result.outcomes)
        EXPECT_EQ(outcome.mem("x"), 2u) << outcome.toString();
}

TEST(Checker, WeakWriteMayIntervizeBetweenAtomics)
{
    // PTX quirk: atomicity only excludes *morally strong* intervening
    // writes, so a weak store can split an RMW.
    auto test = LitmusBuilder("weak_intervene")
                    .thread("t0", 0, 0, {"atom.add.u32 r1, [x], 1"})
                    .thread("t1", 1, 0, {"st.global.u32 [x], 5"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = run(test);
    // The weak store may land between the RMW's read and write:
    // read 0, weak store 5 intervenes, RMW writes 1 over it.
    EXPECT_TRUE(admits(result, "t0.r1 == 0 && [x] == 1"));
}

TEST(Checker, CasSuccessAndFailure)
{
    auto test = LitmusBuilder("cas")
                    .thread("t0", 0, 0, {"atom.cas.u32 r1, [x], 0, 1"})
                    .thread("t1", 1, 0, {"atom.cas.u32 r2, [x], 0, 2"})
                    .permit("t0.r1 == 0")
                    .build();
    auto result = run(test);
    EXPECT_FALSE(admits(result, "t0.r1 == 0 && t1.r2 == 0"));
    EXPECT_TRUE(admits(result, "t0.r1 == 0 && t1.r2 == 1 && [x] == 1"));
    EXPECT_TRUE(admits(result, "t0.r1 == 2 && t1.r2 == 0 && [x] == 2"));
}

TEST(Checker, FailedCasDoesNotPublish)
{
    auto test = LitmusBuilder("cas_fail")
                    .init("x", 9)
                    .thread("t0", 0, 0, {"atom.cas.u32 r1, [x], 0, 1"})
                    .permit("t0.r1 == 9")
                    .build();
    auto result = run(test);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_TRUE(admits(result, "t0.r1 == 9 && [x] == 9"));
}

TEST(Checker, ReleaseSequenceThroughRmw)
{
    auto test = LitmusBuilder("relseq")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "st.release.gpu.u32 [y], 1"})
                    .thread("t1", 1, 0,
                            {"atom.relaxed.gpu.add.u32 r1, [y], 1"})
                    .thread("t2", 2, 0, {"ld.acquire.gpu.u32 r2, [y]",
                                         "ld.global.u32 r3, [x]"})
                    .permit("t2.r2 == 0")
                    .build();
    auto result = run(test);
    // Observing the RMW's write (value 2) implies observing the payload.
    EXPECT_FALSE(admits(result, "t2.r2 == 2 && t2.r3 == 0"));
    EXPECT_TRUE(admits(result, "t2.r2 == 2 && t2.r3 == 42"));
}

// ---- Proxy behavior (the paper's core) --------------------------------

TEST(Checker, MixedProxyIntraThreadRace)
{
    // Fig. 4: without a proxy fence the stale constant value is visible,
    // and a generic fence does not help.
    auto base = [](const std::string &fence) {
        LitmusBuilder b("fig4");
        b.alias("c", "g");
        std::vector<std::string> instrs{"st.global.u32 [g], 42"};
        if (!fence.empty())
            instrs.push_back(fence);
        instrs.push_back("ld.const.u32 r1, [c]");
        b.thread("t0", 0, 0, instrs);
        b.permit("t0.r1 == 0 || t0.r1 == 42");
        return b.build();
    };

    auto nofence = run(base(""));
    EXPECT_TRUE(admits(nofence, "t0.r1 == 0"));
    EXPECT_TRUE(admits(nofence, "t0.r1 == 42"));

    auto generic = run(base("fence.acq_rel.gpu"));
    EXPECT_TRUE(admits(generic, "t0.r1 == 0"));

    auto sc_sys = run(base("fence.sc.sys"));
    EXPECT_TRUE(admits(sc_sys, "t0.r1 == 0"));

    auto proxy = run(base("fence.proxy.constant"));
    EXPECT_FALSE(admits(proxy, "t0.r1 == 0"));
    EXPECT_TRUE(admits(proxy, "t0.r1 == 42"));
}

TEST(Checker, Ptx60BaselineCannotSeeTheRace)
{
    // The proxy-oblivious model wrongly requires 42 in Fig. 4's
    // no-fence variant: this is exactly the gap the paper fills.
    auto test = LitmusBuilder("fig4_60")
                    .alias("c", "g")
                    .thread("t0", 0, 0, {"st.global.u32 [g], 42",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t0.r1 == 42")
                    .build();
    auto r75 = run(test, ProxyMode::Ptx75);
    auto r60 = run(test, ProxyMode::Ptx60);
    EXPECT_TRUE(admits(r75, "t0.r1 == 0"));
    EXPECT_FALSE(admits(r60, "t0.r1 == 0"));
    EXPECT_TRUE(admits(r60, "t0.r1 == 42"));
}

TEST(Checker, AliasFenceRestoresSameLocationOrdering)
{
    auto make = [](bool fence) {
        LitmusBuilder b("alias");
        b.alias("rd2", "rd1");
        std::vector<std::string> instrs{"st.global.u32 [rd1], 42"};
        if (fence)
            instrs.push_back("fence.proxy.alias");
        instrs.push_back("ld.global.u32 r3, [rd2]");
        b.thread("t0", 0, 0, instrs);
        b.permit("t0.r3 == 42");
        return b.build();
    };
    EXPECT_TRUE(admits(run(make(false)), "t0.r3 == 0"));
    EXPECT_FALSE(admits(run(make(true)), "t0.r3 == 0"));
}

TEST(Checker, ProxyFenceMustBeInNonGenericCta)
{
    // Fig. 8e: wrong-CTA fence leaves the stale value observable.
    auto make = [](bool fence_in_reader) {
        LitmusBuilder b("fig8e");
        b.alias("rd2", "rd1");
        std::vector<std::string> t0{"st.global.u32 [rd1], 42"};
        if (!fence_in_reader)
            t0.push_back("fence.proxy.constant");
        t0.push_back("st.release.gpu.u32 [rd4], 1");
        std::vector<std::string> t1{"ld.acquire.gpu.u32 r5, [rd4]"};
        if (fence_in_reader)
            t1.push_back("fence.proxy.constant");
        t1.push_back("ld.const.u32 r3, [rd2]");
        b.thread("t0", 0, 0, t0);
        b.thread("t1", 1, 0, t1);
        b.permit("t1.r5 == 0");
        return b.build();
    };
    EXPECT_TRUE(
        admits(run(make(false)), "t1.r5 == 1 && t1.r3 == 0"));
    EXPECT_FALSE(
        admits(run(make(true)), "t1.r5 == 1 && t1.r3 == 0"));
}

TEST(Checker, DoubleProxyFenceOrderMatters)
{
    // Fig. 8f.
    auto make = [](const std::string &first, const std::string &second) {
        return LitmusBuilder("fig8f")
            .alias("rd2", "surf")
            .thread("t0", 0, 0,
                    {"sust.b.u32 [surf], 42", first, second,
                     "ld.const.u32 r3, [rd2]"})
            .permit("t0.r3 == 0 || t0.r3 == 42")
            .build();
    };
    auto good =
        run(make("fence.proxy.surface", "fence.proxy.constant"));
    EXPECT_FALSE(admits(good, "t0.r3 == 0"));
    auto bad =
        run(make("fence.proxy.constant", "fence.proxy.surface"));
    EXPECT_TRUE(admits(bad, "t0.r3 == 0"));
}

TEST(Checker, CumulativityAcrossCtas)
{
    // §7.1: a proxy fence inside the CTA composes with later inter-CTA
    // synchronization.
    auto test =
        LitmusBuilder("cumulative")
            .alias("rd2", "rd1")
            .thread("t0", 0, 0, {"sust.b.u32 [rd1], 42",
                                 "fence.proxy.surface",
                                 "st.release.gpu.u32 [f], 1"})
            .thread("t1", 1, 0, {"ld.acquire.gpu.u32 r1, [f]",
                                 "ld.global.u32 r2, [rd2]"})
            .permit("t1.r1 == 0")
            .build();
    auto result = run(test);
    EXPECT_FALSE(admits(result, "t1.r1 == 1 && t1.r2 == 0"));
    EXPECT_TRUE(admits(result, "t1.r1 == 1 && t1.r2 == 42"));
}

TEST(Checker, TextureReadsAreStaleWithoutProxyFence)
{
    auto make = [](bool fence) {
        LitmusBuilder b("tex");
        b.alias("t", "x");
        std::vector<std::string> t1{"ld.acquire.gpu.u32 r1, [f]"};
        if (fence)
            t1.push_back("fence.proxy.texture");
        t1.push_back("tex.1d.u32 r2, [t]");
        b.thread("t0", 0, 0, {"st.global.u32 [x], 7",
                              "st.release.gpu.u32 [f], 1"});
        b.thread("t1", 1, 0, t1);
        b.permit("t1.r1 == 0");
        return b.build();
    };
    EXPECT_TRUE(admits(run(make(false)), "t1.r1 == 1 && t1.r2 == 0"));
    EXPECT_FALSE(admits(run(make(true)), "t1.r1 == 1 && t1.r2 == 0"));
}

TEST(Checker, AssertionVerdictsAndDetails)
{
    auto test = LitmusBuilder("verdicts")
                    .thread("t0", 0, 0, {"ld.global.u32 r1, [x]"})
                    .require("t0.r1 == 0")
                    .permit("t0.r1 == 0")
                    .forbid("t0.r1 == 1")
                    .permit("t0.r1 == 1") // fails
                    .build();
    auto result = run(test);
    ASSERT_EQ(result.assertions.size(), 4u);
    EXPECT_TRUE(result.assertions[0].passed);
    EXPECT_TRUE(result.assertions[1].passed);
    EXPECT_TRUE(result.assertions[2].passed);
    EXPECT_FALSE(result.assertions[3].passed);
    EXPECT_FALSE(result.allPassed());
    EXPECT_NE(result.summary().find("FAIL"), std::string::npos);
}

TEST(Checker, WitnessesRecorded)
{
    auto test = LitmusBuilder("wit")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 1")
                    .build();
    auto result = run(test);
    ASSERT_EQ(result.witnesses.size(), result.outcomes.size());
    const auto &witness = result.witnesses.begin()->second;
    EXPECT_FALSE(witness.events.empty());
    EXPECT_FALSE(witness.rf.empty());
    EXPECT_NE(witness.toString().find("rf"), std::string::npos);
}

TEST(Checker, WitnessDotRendering)
{
    auto test = LitmusBuilder("dot")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "st.release.gpu.u32 [y], 1"})
                    .thread("t1", 1, 0, {"ld.acquire.gpu.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 1 && t1.r2 == 1")
                    .build();
    auto result = run(test);
    const model::Witness *synced = nullptr;
    for (const auto &[outcome, witness] : result.witnesses) {
        if (outcome.reg("t1", "r1") == 1)
            synced = &witness;
    }
    ASSERT_NE(synced, nullptr);
    std::string dot = synced->toDot("dot_test");
    EXPECT_NE(dot.find("digraph \"dot_test\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"t0\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"rf\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"sw\""), std::string::npos);
    // Structured edges agree with the string dumps.
    EXPECT_EQ(synced->rfEdges.size(), synced->rf.size());
    EXPECT_FALSE(synced->poEdges.empty());
    // Reduced po: one edge per thread of two instructions.
    EXPECT_EQ(synced->poEdges.size(), 2u);
}

TEST(Checker, StatsAreCounted)
{
    auto test = LitmusBuilder("stats")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 0 || t1.r1 == 1")
                    .build();
    auto result = run(test);
    EXPECT_EQ(result.stats.rfAssignments, 2u);
    EXPECT_GE(result.stats.candidateExecutions, 2u);
    EXPECT_EQ(result.stats.consistentExecutions,
              result.stats.candidateExecutions);
}

TEST(Checker, MaxExecutionsGuard)
{
    CheckOptions opts;
    opts.maxExecutions = 1;
    auto test = LitmusBuilder("guard")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    // Exceeding the budget is a structured verdict, not an error: the
    // partial result comes back flagged, reads as inconclusive (never
    // a pass), and says so in the summary.
    auto result = Checker(opts).check(test);
    EXPECT_TRUE(result.budgetExceeded);
    EXPECT_FALSE(result.allPassed());
    EXPECT_LE(result.stats.candidateExecutions, 2u);
    EXPECT_NE(result.summary().find("BUDGET EXCEEDED"),
              std::string::npos);
}

TEST(Checker, BudgetNotExceededOnCompleteEnumeration)
{
    auto test = LitmusBuilder("no_guard")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto result = Checker().check(test);
    EXPECT_FALSE(result.budgetExceeded);
    EXPECT_TRUE(result.allPassed());
}

TEST(Checker, Ptx75IsConservativeOverPtx60OnProxyFreePrograms)
{
    // On programs with no aliases and no non-generic accesses, the two
    // variants must agree exactly. (The full-corpus sweep lives in
    // test_paper_figures.cc.)
    auto test = LitmusBuilder("agree")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "st.release.gpu.u32 [y], 1"})
                    .thread("t1", 1, 0, {"ld.acquire.gpu.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    auto r75 = run(test, ProxyMode::Ptx75);
    auto r60 = run(test, ProxyMode::Ptx60);
    EXPECT_EQ(r75.outcomes, r60.outcomes);
}

TEST(CheckerProfile, RejectionCountersSumOverFigureCorpus)
{
    // The profiler's attribution contract (ISSUE 8): on any completed
    // enumeration every non-consistent candidate is charged to exactly
    // one candidate-level axiom, and the depth histogram covers every
    // examined candidate.
    std::size_t covered = 0;
    for (const std::string &name : litmus::testNames()) {
        if (name.rfind("fig8", 0) != 0 && name.rfind("fig9", 0) != 0)
            continue;
        auto result = run(litmus::testByName(name));
        ASSERT_FALSE(result.budgetExceeded) << name;
        const CheckStats &s = result.stats;
        EXPECT_EQ(s.rejectCausalityB + s.rejectScPerLocation +
                      s.rejectAtomicity + s.rejectFenceSc,
                  s.candidateExecutions - s.consistentExecutions)
            << name;
        std::uint64_t depth_sum = 0;
        for (std::uint64_t bucket : s.depthHistogram)
            depth_sum += bucket;
        EXPECT_EQ(depth_sum, s.candidateExecutions) << name;
        covered++;
    }
    EXPECT_GE(covered, 15u);
}

TEST(CheckerProfile, BranchingCountersMatchProgramShape)
{
    auto test = LitmusBuilder("branching")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 0 || t1.r1 == 1")
                    .build();
    auto result = run(test);
    const CheckStats &s = result.stats;
    // One read with two candidate sources (the init write and t0's
    // store): two rf assignments, each seeing the one location with a
    // live write and its single admissible coherence order.
    EXPECT_EQ(s.enumReads, 1u);
    EXPECT_EQ(s.enumSourceSlots, 2u);
    EXPECT_EQ(s.rfAssignments, 2u);
    EXPECT_EQ(s.coLocations, s.rfAssignments);
    EXPECT_EQ(s.coOrders, s.coLocations);
    // Depth = reads = 1; every candidate lands in bucket 1.
    EXPECT_EQ(s.depthHistogram[1], s.candidateExecutions);
}

TEST(CheckerProfile, SamplingIsDeterministicPerCheck)
{
    obs::Session session;
    session.enable();
    CheckOptions opts;
    opts.profileEnum = 1;
    opts.session = &session;
    auto result =
        Checker(opts).check(litmus::testByName("fig9_message_passing"));
    session.disable();
    // Period 1 samples every examined candidate; the sample *count* is
    // deterministic even though the sampled timings are wall clock.
    EXPECT_EQ(session.metrics.counter("checker.enum.sampled.candidates"),
              result.stats.candidateExecutions);
    EXPECT_GT(
        session.metrics.counter("checker.enum.sampled.co_build_ns"), 0u);

    obs::Session coarse;
    coarse.enable();
    CheckOptions opts4;
    opts4.profileEnum = 4;
    opts4.session = &coarse;
    auto result4 =
        Checker(opts4).check(litmus::testByName("fig9_message_passing"));
    coarse.disable();
    EXPECT_EQ(coarse.metrics.counter("checker.enum.sampled.candidates"),
              (result4.stats.candidateExecutions + 3) / 4);
}

/**
 * The incremental and legacy cores must agree on everything a caller
 * can observe: outcomes, witnesses, assertion verdicts, the budget
 * flag, and every deterministic counter that both cores account (the
 * three incremental-only layer counters are excluded by contract —
 * layerRfDelta additionally counts the DFS's closure inserts, and the
 * prefix-reject counters have no legacy analogue).
 */
void
expectCoresAgree(const CheckResult &inc, const CheckResult &leg,
                 const std::string &ctx)
{
    EXPECT_EQ(inc.outcomes, leg.outcomes) << ctx;
    EXPECT_EQ(inc.budgetExceeded, leg.budgetExceeded) << ctx;
    const CheckStats &a = inc.stats;
    const CheckStats &b = leg.stats;
    EXPECT_EQ(a.rfAssignments, b.rfAssignments) << ctx;
    EXPECT_EQ(a.candidateExecutions, b.candidateExecutions) << ctx;
    EXPECT_EQ(a.consistentExecutions, b.consistentExecutions) << ctx;
    EXPECT_EQ(a.rejectNoThinAir, b.rejectNoThinAir) << ctx;
    EXPECT_EQ(a.rejectValueInfeasible, b.rejectValueInfeasible) << ctx;
    EXPECT_EQ(a.rejectCausalityA, b.rejectCausalityA) << ctx;
    EXPECT_EQ(a.rejectCoherenceUnembeddable,
              b.rejectCoherenceUnembeddable)
        << ctx;
    EXPECT_EQ(a.rejectCausalityB, b.rejectCausalityB) << ctx;
    EXPECT_EQ(a.rejectScPerLocation, b.rejectScPerLocation) << ctx;
    EXPECT_EQ(a.rejectAtomicity, b.rejectAtomicity) << ctx;
    EXPECT_EQ(a.rejectFenceSc, b.rejectFenceSc) << ctx;
    EXPECT_EQ(a.fixpointIterations, b.fixpointIterations) << ctx;
    EXPECT_EQ(a.fastPathHits, b.fastPathHits) << ctx;
    EXPECT_EQ(a.fastPathMisses, b.fastPathMisses) << ctx;
    EXPECT_EQ(a.coLocations, b.coLocations) << ctx;
    EXPECT_EQ(a.coOrders, b.coOrders) << ctx;
    EXPECT_EQ(a.enumReads, b.enumReads) << ctx;
    EXPECT_EQ(a.enumSourceSlots, b.enumSourceSlots) << ctx;
    EXPECT_EQ(a.layerBaseReuse, b.layerBaseReuse) << ctx;
    for (std::size_t i = 0; i < CheckStats::kDepthBuckets; i++)
        EXPECT_EQ(a.depthHistogram[i], b.depthHistogram[i])
            << ctx << " bucket " << i;
    ASSERT_EQ(inc.witnesses.size(), leg.witnesses.size()) << ctx;
    for (const auto &[outcome, witness] : leg.witnesses) {
        auto it = inc.witnesses.find(outcome);
        ASSERT_NE(it, inc.witnesses.end())
            << ctx << " missing witness for " << outcome.toString();
        // toDot() renders every witness field deterministically, so
        // string equality is content equality — including which
        // candidate was picked as the representative.
        EXPECT_EQ(it->second.toDot("w"), witness.toDot("w"))
            << ctx << " witness for " << outcome.toString();
    }
    ASSERT_EQ(inc.assertions.size(), leg.assertions.size()) << ctx;
    for (std::size_t i = 0; i < inc.assertions.size(); i++) {
        EXPECT_EQ(inc.assertions[i].passed, leg.assertions[i].passed)
            << ctx;
        EXPECT_EQ(inc.assertions[i].detail, leg.assertions[i].detail)
            << ctx;
    }
}

TEST(CheckerEnumCore, IncrementalMatchesLegacyOnFullRegistry)
{
    for (const std::string &name : litmus::testNames()) {
        const auto &test = litmus::testByName(name);
        for (ProxyMode mode : {ProxyMode::Ptx60, ProxyMode::Ptx75}) {
            CheckOptions inc_opts;
            inc_opts.mode = mode;
            CheckOptions leg_opts;
            leg_opts.mode = mode;
            leg_opts.enumCore = EnumCore::Legacy;
            expectCoresAgree(Checker(inc_opts).check(test),
                             Checker(leg_opts).check(test),
                             name + "/" + toString(mode));
        }
    }
}

TEST(CheckerEnumCore, IncrementalMatchesLegacyAtBudgetCutoff)
{
    // The budget cutoff is defined by the legacy candidate numbering;
    // the incremental core must stop at the same candidate with the
    // same partial counters, for every possible cutoff point.
    const auto &test = litmus::testByName("fig9_message_passing");
    const std::uint64_t total =
        Checker().check(test).stats.candidateExecutions;
    ASSERT_GT(total, 2u);
    for (std::uint64_t budget = 0; budget <= total; budget++) {
        CheckOptions inc_opts;
        inc_opts.maxExecutions = budget;
        CheckOptions leg_opts;
        leg_opts.maxExecutions = budget;
        leg_opts.enumCore = EnumCore::Legacy;
        expectCoresAgree(Checker(inc_opts).check(test),
                         Checker(leg_opts).check(test),
                         "budget=" + std::to_string(budget));
    }
}

TEST(CheckerEnumCore, LayerCountersAccountTheIncrementalWork)
{
    // fig8a_alias_fence: multi-read, multi-location — the layered
    // engine must reuse the base layer once per surviving assignment
    // and apply rf deltas instead of re-closing.
    auto result = run(litmus::testByName("fig8a_alias_fence"));
    const CheckStats &s = result.stats;
    EXPECT_GT(s.layerBaseReuse, 0u);
    EXPECT_GT(s.layerRfDelta, 0u);
    // The delta engine never re-runs the observation fixpoint to a
    // fixed point per assignment: productive passes stay strictly
    // below the number of rf assignments on fence/atomic-free tests.
    EXPECT_LT(s.fixpointIterations, s.rfAssignments);
}

TEST(CheckerEnumCore, EnumCoreStringsRoundTrip)
{
    EXPECT_EQ(toString(EnumCore::Incremental), "incremental");
    EXPECT_EQ(toString(EnumCore::Legacy), "legacy");
    EXPECT_EQ(enumCoreFromString("incremental"), EnumCore::Incremental);
    EXPECT_EQ(enumCoreFromString("legacy"), EnumCore::Legacy);
    EXPECT_EQ(enumCoreFromString("bogus"), std::nullopt);
}

TEST(CheckerProfile, DisabledSamplingPublishesNoSampledCounters)
{
    obs::Session session;
    session.enable();
    CheckOptions opts;
    opts.session = &session;
    Checker(opts).check(litmus::testByName("fig9_message_passing"));
    session.disable();
    EXPECT_EQ(session.metrics.counter("checker.enum.sampled.candidates"),
              0u);
    // The always-on counters are still published.
    EXPECT_GT(session.metrics.counter(
                  "checker.enum.reject.causality_b") +
                  session.metrics.counter("checker.consistent"),
              0u);
}

} // namespace
