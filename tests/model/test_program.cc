/**
 * @file
 * Unit tests for the static program expansion: events, program order,
 * dependencies, moral strength (with the §6.2.2 same-proxy condition),
 * and clique construction.
 */

#include <gtest/gtest.h>

#include "litmus/test.hh"
#include "model/program.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::model;
using litmus::LitmusBuilder;
using litmus::LitmusTest;

/** Find the single event matching a predicate. */
template <typename Pred>
const Event &
theEvent(const Program &program, Pred pred)
{
    const Event *found = nullptr;
    for (const auto &e : program.events()) {
        if (pred(e)) {
            EXPECT_EQ(found, nullptr) << "predicate matched twice";
            found = &e;
        }
    }
    EXPECT_NE(found, nullptr) << "predicate matched nothing";
    return *found;
}

LitmusTest
mpTest()
{
    return LitmusBuilder("mp")
        .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                             "st.release.cta.u32 [y], 1"})
        .thread("t1", 0, 0, {"ld.acquire.cta.u32 r1, [y]",
                             "ld.global.u32 r2, [x]"})
        .permit("t1.r1 == 0")
        .build();
}

TEST(Program, EventLayout)
{
    Program p(mpTest(), ProxyMode::Ptx75);
    // 2 init writes + 4 instruction events.
    EXPECT_EQ(p.size(), 6u);
    EXPECT_EQ(p.locationCount(), 2u);
    EXPECT_TRUE(p.event(0).isInit);
    EXPECT_TRUE(p.event(1).isInit);
    EXPECT_EQ(p.reads().size(), 2u);
}

TEST(Program, ProgramOrderIsPerThread)
{
    Program p(mpTest(), ProxyMode::Ptx75);
    const Event &w_x = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && e.thread == 0 &&
               e.instrIndex == 0;
    });
    const Event &w_y = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && e.thread == 0 &&
               e.instrIndex == 1;
    });
    const Event &r_y = theEvent(p, [](const Event &e) {
        return e.isRead() && e.thread == 1 && e.instrIndex == 0;
    });
    EXPECT_TRUE(p.po().contains(w_x.id, w_y.id));
    EXPECT_FALSE(p.po().contains(w_y.id, w_x.id));
    EXPECT_FALSE(p.po().contains(w_x.id, r_y.id));
    EXPECT_FALSE(p.po().contains(0, w_x.id)); // init has no po
}

TEST(Program, AtomicsExpandToReadWritePairs)
{
    auto test = LitmusBuilder("atom")
                    .thread("t0", 0, 0, {"atom.add.u32 r1, [x], 1"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &r = theEvent(p, [](const Event &e) {
        return e.isRead() && !e.isInit;
    });
    const Event &w = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EXPECT_EQ(r.rmwPartner, w.id);
    EXPECT_EQ(w.rmwPartner, r.id);
    EXPECT_TRUE(r.isAtomic());
    EXPECT_TRUE(p.po().contains(r.id, w.id));
    // add has an internal value dependency read -> write
    EXPECT_TRUE(p.dep().contains(r.id, w.id));
}

TEST(Program, ExchHasNoInternalDependency)
{
    auto test = LitmusBuilder("exch")
                    .thread("t0", 0, 0, {"atom.exch.u32 r1, [x], 5"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &r = theEvent(p, [](const Event &e) {
        return e.isRead() && !e.isInit;
    });
    EXPECT_FALSE(p.dep().contains(r.id, r.rmwPartner));
}

TEST(Program, RegisterDependencies)
{
    auto test = LitmusBuilder("dep")
                    .thread("t0", 0, 0, {"ld.global.u32 r1, [x]",
                                         "st.global.u32 [y], r1"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &ld = theEvent(p, [](const Event &e) {
        return e.isRead() && !e.isInit;
    });
    const Event &st = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EXPECT_TRUE(p.dep().contains(ld.id, st.id));
    EXPECT_EQ(p.regDef(0, "r1"), ld.id);
}

TEST(Program, ProxyTagging)
{
    auto test = LitmusBuilder("proxies")
                    .alias("c", "x")
                    .thread("t0", 3, 0, {"st.global.u32 [x], 1",
                                         "ld.const.u32 r1, [c]",
                                         "tex.1d.u32 r2, [x]",
                                         "suld.b.u32 r3, [x]"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &st = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    const Event &c = theEvent(p, [](const Event &e) {
        return e.proxy.kind == litmus::ProxyKind::Constant;
    });
    const Event &t = theEvent(p, [](const Event &e) {
        return e.proxy.kind == litmus::ProxyKind::Texture;
    });
    const Event &s = theEvent(p, [](const Event &e) {
        return e.proxy.kind == litmus::ProxyKind::Surface;
    });
    EXPECT_EQ(st.proxy.kind, litmus::ProxyKind::Generic);
    EXPECT_EQ(st.proxy.address, st.address);
    // Non-generic proxies are specialized by CTA (Fig. 5 "Surface (CTA
    // 4)").
    EXPECT_EQ(c.proxy.cta, 3);
    EXPECT_EQ(t.proxy.cta, 3);
    EXPECT_EQ(s.proxy.cta, 3);
    // All four access the same physical location.
    EXPECT_EQ(st.location, c.location);
    EXPECT_EQ(st.location, t.location);
    EXPECT_EQ(st.location, s.location);
    // But the constant load's virtual address differs (alias).
    EXPECT_NE(st.address, c.address);
}

TEST(Program, Ptx60ModeErasesProxies)
{
    auto test = LitmusBuilder("erase")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx60);
    const Event &st = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    const Event &ld = theEvent(p, [](const Event &e) {
        return e.isRead() && !e.isInit;
    });
    EXPECT_EQ(ld.proxy.kind, litmus::ProxyKind::Generic);
    EXPECT_EQ(st.proxy, ld.proxy);
    EXPECT_EQ(st.address, ld.address);
}

TEST(Program, MoralStrengthSameThreadSameProxy)
{
    auto test = LitmusBuilder("ms")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r1, [x]",
                                         "ld.const.u32 r2, [c]"})
                    .permit("t0.r1 == 1")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &st = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    const Event &ld = theEvent(p, [](const Event &e) {
        return e.isRead() && e.proxy.kind == litmus::ProxyKind::Generic;
    });
    const Event &ldc = theEvent(p, [](const Event &e) {
        return e.proxy.kind == litmus::ProxyKind::Constant;
    });
    // Same thread, same proxy, same location: morally strong.
    EXPECT_TRUE(p.morallyStrong().contains(st.id, ld.id));
    EXPECT_TRUE(p.morallyStrong().contains(ld.id, st.id));
    // Same thread but DIFFERENT proxy: not morally strong (§6.2.2).
    EXPECT_FALSE(p.morallyStrong().contains(st.id, ldc.id));
    // Under PTX 6.0 (proxies erased) the pair would be morally strong.
    Program p60(test, ProxyMode::Ptx60);
    const Event &st60 = theEvent(p60, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    const Event &ldc60 = theEvent(p60, [](const Event &e) {
        return e.isRead() && !e.isInit && e.instrIndex == 2;
    });
    EXPECT_TRUE(p60.morallyStrong().contains(st60.id, ldc60.id));
}

TEST(Program, MoralStrengthScopes)
{
    auto test = LitmusBuilder("scopes")
                    .thread("t0", 0, 0, {"st.relaxed.cta.u32 [x], 1"})
                    .thread("t1", 0, 0, {"ld.relaxed.gpu.u32 r1, [x]"})
                    .thread("t2", 1, 0, {"ld.relaxed.gpu.u32 r2, [x]"})
                    .thread("t3", 2, 1, {"ld.relaxed.gpu.u32 r3, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &w = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    auto read_of = [&](int thread) -> const Event & {
        return theEvent(p, [thread](const Event &e) {
            return e.isRead() && e.thread == thread;
        });
    };
    // cta-scoped write vs gpu-scoped read in the same CTA: mutual
    // inclusion holds.
    EXPECT_TRUE(p.morallyStrong().contains(w.id, read_of(1).id));
    // Different CTA: the cta-scoped write does not include the reader.
    EXPECT_FALSE(p.morallyStrong().contains(w.id, read_of(2).id));
    // Different GPU entirely.
    EXPECT_FALSE(p.morallyStrong().contains(w.id, read_of(3).id));
}

TEST(Program, MoralStrengthWeakOps)
{
    auto test = LitmusBuilder("weak")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &w = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    const Event &r = theEvent(p, [](const Event &e) {
        return e.isRead() && !e.isInit;
    });
    // Cross-thread weak operations are never morally strong.
    EXPECT_FALSE(p.morallyStrong().contains(w.id, r.id));
    // But the init write is morally strong with overlapping accesses.
    EXPECT_TRUE(p.morallyStrong().contains(p.initWrite(w.location), r.id));
}

TEST(Program, ReadSourcesExcludeFutureAndSelf)
{
    auto test = LitmusBuilder("sources")
                    .thread("t0", 0, 0, {"ld.global.u32 r1, [x]",
                                         "st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"atom.add.u32 r2, [x], 1"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &ld = theEvent(p, [](const Event &e) {
        return e.isRead() && e.thread == 0;
    });
    const Event &st = theEvent(p, [](const Event &e) {
        return e.isWrite() && e.thread == 0;
    });
    const Event &atom_r = theEvent(p, [](const Event &e) {
        return e.isRead() && e.thread == 1;
    });
    const Event &atom_w = theEvent(p, [](const Event &e) {
        return e.isWrite() && e.thread == 1;
    });
    auto ld_sources = p.readSources(ld.id);
    // The po-later store is not a candidate source for the load.
    EXPECT_EQ(std::count(ld_sources.begin(), ld_sources.end(), st.id), 0);
    // The atomic's write IS a candidate (cross-thread).
    EXPECT_EQ(std::count(ld_sources.begin(), ld_sources.end(), atom_w.id),
              1);
    // An RMW cannot read its own write.
    auto atom_sources = p.readSources(atom_r.id);
    EXPECT_EQ(std::count(atom_sources.begin(), atom_sources.end(),
                         atom_w.id),
              0);
    EXPECT_EQ(std::count(atom_sources.begin(), atom_sources.end(), st.id),
              1);
}

TEST(Program, CliquesSeparateProxies)
{
    auto test = LitmusBuilder("cliques")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r1, [x]",
                                         "ld.const.u32 r2, [c]"})
                    .permit("t0.r1 == 1")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    const Event &st = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    const Event &ldc = theEvent(p, [](const Event &e) {
        return e.proxy.kind == litmus::ProxyKind::Constant;
    });
    // No clique contains both the generic store and the constant load.
    for (const auto &clique : p.msCliques()) {
        EXPECT_FALSE(clique.contains(st.id) && clique.contains(ldc.id))
            << clique.toString();
    }
    // Some clique contains the store and the generic load.
    const Event &ld = theEvent(p, [](const Event &e) {
        return e.isRead() && e.proxy.kind == litmus::ProxyKind::Generic;
    });
    bool found = false;
    for (const auto &clique : p.msCliques()) {
        if (clique.contains(st.id) && clique.contains(ld.id))
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Program, ReleaseAcquirePatterns)
{
    auto test = LitmusBuilder("patterns")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "fence.acq_rel.gpu",
                                         "st.relaxed.gpu.u32 [y], 1",
                                         "st.release.gpu.u32 [z], 1"})
                    .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r1, [y]",
                                         "fence.acq_rel.gpu",
                                         "ld.acquire.gpu.u32 r2, [z]"})
                    .permit("t1.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    // Release patterns: the release store, plus fence;relaxed-store and
    // fence;release-store.
    EXPECT_EQ(p.releasePatterns().size(), 3u);
    // Acquire patterns: the acquire load, plus relaxed-load;fence. (The
    // acquire load is po-after the fence, not before, so it does not
    // pair with it.)
    EXPECT_EQ(p.acquirePatterns().size(), 2u);
}

TEST(Program, ScopeIncludes)
{
    auto test = mpTest();
    Program p(test, ProxyMode::Ptx75);
    const Event &rel = theEvent(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && e.instrIndex == 1;
    });
    EXPECT_TRUE(p.scopeIncludes(rel, 0));
    EXPECT_TRUE(p.scopeIncludes(rel, 1)); // same CTA
    EXPECT_TRUE(p.scopeIncludes(rel, -1)); // init pseudo-thread
}

} // namespace
