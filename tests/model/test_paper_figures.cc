/**
 * @file
 * Integration tests: every built-in litmus test (the paper's Figs. 2, 4,
 * 8, 9 plus the classic corpus) must satisfy all of its assertions under
 * the PTX 7.5 proxy-aware model. Parameterized so each registry entry is
 * its own ctest case.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "model/checker.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::model;

class PaperFigures : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PaperFigures, AssertionsHoldUnderPtx75)
{
    const auto &test = litmus::testByName(GetParam());
    CheckOptions opts;
    opts.collectWitnesses = false;
    auto result = Checker(opts).check(test);
    EXPECT_TRUE(result.allPassed()) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PaperFigures,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// The conservative-extension property: on proxy-free programs (single
// virtual address per location, generic accesses only), PTX 7.5 allows
// exactly the same outcomes as PTX 6.0.
class ConservativeExtension : public ::testing::TestWithParam<std::string>
{
};

namespace {

bool
usesProxies(const litmus::LitmusTest &test)
{
    for (const auto &thread : test.threads()) {
        for (const auto &instr : thread.instructions) {
            if (instr.opcode == litmus::Opcode::FenceProxy)
                return true;
            if (instr.isMemoryOp() &&
                instr.proxy != litmus::ProxyKind::Generic) {
                return true;
            }
            if (instr.isMemoryOp() &&
                test.locationOf(instr.address) != instr.address) {
                return true;
            }
        }
    }
    return false;
}

} // namespace

TEST_P(ConservativeExtension, Ptx75MatchesPtx60OnProxyFreeTests)
{
    const auto &test = litmus::testByName(GetParam());
    if (usesProxies(test))
        GTEST_SKIP() << "test exercises proxies";
    CheckOptions opts75;
    opts75.collectWitnesses = false;
    CheckOptions opts60 = opts75;
    opts60.mode = ProxyMode::Ptx60;
    auto r75 = Checker(opts75).check(test);
    auto r60 = Checker(opts60).check(test);
    EXPECT_EQ(r75.outcomes, r60.outcomes) << test.name();
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ConservativeExtension,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// On proxy-exercising tests, PTX 7.5 must be weaker or equal: every
// outcome PTX 6.0 allows is also allowed by PTX 7.5 (proxies only
// *relax* the model; they never forbid previously-legal behavior).
class ProxyRelaxation : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProxyRelaxation, Ptx75AllowsEverythingPtx60Allows)
{
    const auto &test = litmus::testByName(GetParam());
    CheckOptions opts75;
    opts75.collectWitnesses = false;
    CheckOptions opts60 = opts75;
    opts60.mode = ProxyMode::Ptx60;
    auto r75 = Checker(opts75).check(test);
    auto r60 = Checker(opts60).check(test);
    for (const auto &outcome : r60.outcomes) {
        EXPECT_TRUE(r75.outcomes.count(outcome))
            << test.name() << ": PTX 6.0 outcome missing under 7.5: "
            << outcome.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ProxyRelaxation,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
