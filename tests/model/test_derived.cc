/**
 * @file
 * Direct unit tests for the derived relations (computeDerived): moral
 * strength filtering of reads-from, observation-order chains through
 * RMWs, synchronizes-with scoping, base causality, and each rule of
 * proxy-preserved base causality in isolation.
 */

#include <gtest/gtest.h>

#include "litmus/test.hh"
#include "model/checker.hh"
#include "model/program.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::model;
using litmus::LitmusBuilder;
using relation::EventId;
using relation::Relation;

/** Find the unique event matching a predicate. */
template <typename Pred>
EventId
eid(const Program &p, Pred pred)
{
    EventId found = static_cast<EventId>(-1);
    for (const auto &e : p.events()) {
        if (pred(e)) {
            EXPECT_EQ(found, static_cast<EventId>(-1));
            found = e.id;
        }
    }
    EXPECT_NE(found, static_cast<EventId>(-1));
    return found;
}

/** rf with every read sourced from init (all-stale candidate). */
Relation
allInitRf(const Program &p)
{
    Relation rf(p.size());
    for (EventId r : p.reads())
        rf.insert(p.initWrite(p.event(r).location), r);
    return rf;
}

DerivedRelations
derive(const Program &p, const Relation &rf)
{
    std::vector<char> live(p.size(), 1);
    return computeDerived(p, rf, live);
}

TEST(Derived, WeakRfIsNotMorallyStrong)
{
    auto test = LitmusBuilder("weak_rf")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("t1.r1 == 1")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EventId r = eid(p, [](const Event &e) { return e.isRead(); });
    Relation rf(p.size());
    rf.insert(w, r);
    auto d = derive(p, rf);
    EXPECT_FALSE(d.msRf.contains(w, r));
    EXPECT_TRUE(d.obs.empty());
    EXPECT_TRUE(d.sw.empty());
}

TEST(Derived, StrongRfEntersObservation)
{
    auto test = LitmusBuilder("strong_rf")
                    .thread("t0", 0, 0, {"st.relaxed.gpu.u32 [x], 1"})
                    .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r1, [x]"})
                    .permit("t1.r1 == 1")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EventId r = eid(p, [](const Event &e) { return e.isRead(); });
    Relation rf(p.size());
    rf.insert(w, r);
    auto d = derive(p, rf);
    EXPECT_TRUE(d.msRf.contains(w, r));
    EXPECT_TRUE(d.obs.contains(w, r));
    // Relaxed accesses synchronize nothing.
    EXPECT_TRUE(d.sw.empty());
}

TEST(Derived, ObservationExtendsThroughRmwChains)
{
    auto test =
        LitmusBuilder("chain")
            .thread("t0", 0, 0, {"st.release.gpu.u32 [y], 1"})
            .thread("t1", 1, 0, {"atom.relaxed.gpu.add.u32 r1, [y], 1"})
            .thread("t2", 2, 0, {"atom.relaxed.gpu.add.u32 r2, [y], 1"})
            .thread("t3", 3, 0, {"ld.acquire.gpu.u32 r3, [y]"})
            .permit("t3.r3 == 0")
            .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w_rel = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && !e.isAtomic();
    });
    EventId a1_r = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 1;
    });
    EventId a1_w = p.event(a1_r).rmwPartner;
    EventId a2_r = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 2;
    });
    EventId a2_w = p.event(a2_r).rmwPartner;
    EventId r_acq = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 3;
    });
    // Chain: release -> atom1 -> atom2 -> acquire.
    Relation rf(p.size());
    rf.insert(w_rel, a1_r);
    rf.insert(a1_w, a2_r);
    rf.insert(a2_w, r_acq);
    auto d = derive(p, rf);
    // Observation reaches the acquire through both RMW hops.
    EXPECT_TRUE(d.obs.contains(w_rel, a1_r));
    EXPECT_TRUE(d.obs.contains(w_rel, a2_r));
    EXPECT_TRUE(d.obs.contains(w_rel, r_acq));
    // And synchronizes-with connects release to acquire.
    EXPECT_TRUE(d.sw.contains(w_rel, r_acq));
}

TEST(Derived, FenceScopeGatesSynchronizesWith)
{
    auto make = [](const char *writer_fence, const char *reader_fence) {
        return LitmusBuilder("fence_scope")
            .thread("t0", 0, 0, {"st.global.u32 [x], 1", writer_fence,
                                 "st.relaxed.gpu.u32 [y], 1"})
            .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r1, [y]",
                                 reader_fence,
                                 "ld.global.u32 r2, [x]"})
            .permit("t1.r1 == 0")
            .build();
    };
    for (auto [wf, rf_text, expect_sw] :
         {std::tuple{"fence.acq_rel.gpu", "fence.acq_rel.gpu", true},
          std::tuple{"fence.acq_rel.cta", "fence.acq_rel.gpu", false},
          std::tuple{"fence.acq_rel.gpu", "fence.acq_rel.cta", false}}) {
        auto test = make(wf, rf_text);
        Program p(test, ProxyMode::Ptx75);
        EventId w_y = eid(p, [](const Event &e) {
            return e.isWrite() && !e.isInit && e.isStrong();
        });
        EventId r_y = eid(p, [](const Event &e) {
            return e.isRead() && e.isStrong();
        });
        Relation rf(p.size());
        rf.insert(w_y, r_y);
        // Other reads source from init.
        for (EventId r : p.reads()) {
            if (r != r_y)
                rf.insert(p.initWrite(p.event(r).location), r);
        }
        auto d = derive(p, rf);
        EXPECT_EQ(!d.sw.empty(), expect_sw) << wf << " / " << rf_text;
    }
}

TEST(Derived, BcauseIncludesPoAndComposes)
{
    auto test = LitmusBuilder("bc")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "st.release.gpu.u32 [y], 1"})
                    .thread("t1", 1, 0, {"ld.acquire.gpu.u32 r1, [y]",
                                         "ld.global.u32 r2, [x]"})
                    .permit("t1.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w_x = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && !e.isStrong();
    });
    EventId w_y = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && e.isStrong();
    });
    EventId r_y = eid(p, [](const Event &e) {
        return e.isRead() && e.isStrong();
    });
    EventId r_x = eid(p, [](const Event &e) {
        return e.isRead() && !e.isStrong();
    });
    Relation rf(p.size());
    rf.insert(w_y, r_y);
    rf.insert(p.initWrite(p.event(r_x).location), r_x);
    auto d = derive(p, rf);
    // po alone (the §6.2.3 addition).
    EXPECT_TRUE(d.bcause.contains(w_x, w_y));
    // po ; sw ; po.
    EXPECT_TRUE(d.bcause.contains(w_x, r_x));
    // ppbc rule 1 (same address, generic) lifts it into causality.
    EXPECT_TRUE(d.ppbc.contains(w_x, r_x));
    EXPECT_TRUE(d.cause.contains(w_x, r_x));
}

TEST(Derived, PpbcRulesOneByOne)
{
    // One thread, one location, four views: generic va, generic alias,
    // constant alias.
    auto test = LitmusBuilder("rules")
                    .alias("a", "x")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "ld.global.u32 r0, [x]",
                                         "ld.global.u32 r1, [a]",
                                         "ld.const.u32 r2, [c]"})
                    .permit("t0.r0 == 1")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EventId r_same = eid(p, [](const Event &e) {
        return e.isRead() && e.instrIndex == 1;
    });
    EventId r_alias = eid(p, [](const Event &e) {
        return e.isRead() && e.instrIndex == 2;
    });
    EventId r_const = eid(p, [](const Event &e) {
        return e.isRead() && e.instrIndex == 3;
    });
    auto d = derive(p, allInitRf(p));
    // Rule 1: same va, generic.
    EXPECT_TRUE(d.ppbc.contains(w, r_same));
    // Different alias, no fence: no ppbc despite bcause.
    EXPECT_TRUE(d.bcause.contains(w, r_alias));
    EXPECT_FALSE(d.ppbc.contains(w, r_alias));
    // Different proxy, no fence: no ppbc.
    EXPECT_FALSE(d.ppbc.contains(w, r_const));
}

TEST(Derived, PpbcRule2SameProxySameCta)
{
    auto test = LitmusBuilder("rule2")
                    .thread("t0", 0, 0, {"sust.b.u32 [s], 1"})
                    .thread("t1", 0, 0, {"suld.b.u32 r1, [s]"})
                    .thread("t2", 1, 0, {"suld.b.u32 r2, [s]"})
                    .permit("t1.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EventId r_same_cta = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 1;
    });
    EventId r_other_cta = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 2;
    });
    // Manufacture base causality to both readers via... there is none
    // (no sync), so ppbc must be empty everywhere.
    auto d = derive(p, allInitRf(p));
    EXPECT_FALSE(d.bcause.contains(w, r_same_cta));
    EXPECT_FALSE(d.ppbc.contains(w, r_same_cta));
    (void)r_other_cta;

    // Same test but the readers sit po-after the writer (one thread):
    auto intra = LitmusBuilder("rule2b")
                     .thread("t0", 0, 0, {"sust.b.u32 [s], 1",
                                          "suld.b.u32 r1, [s]"})
                     .permit("t0.r1 == 1")
                     .build();
    Program p2(intra, ProxyMode::Ptx75);
    EventId w2 = eid(p2, [](const Event &e) {
        return e.isWrite() && !e.isInit;
    });
    EventId r2 = eid(p2, [](const Event &e) { return e.isRead(); });
    auto d2 = derive(p2, allInitRf(p2));
    EXPECT_TRUE(d2.ppbc.contains(w2, r2)); // rule 2
}

TEST(Derived, CauseUsesObservationThenPpbc)
{
    // WRC shape: cause(W_x, R2_x) exists only via obs;ppbc.
    auto test =
        LitmusBuilder("wrc")
            .thread("t0", 0, 0, {"st.relaxed.gpu.u32 [x], 1"})
            .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r1, [x]",
                                 "st.release.gpu.u32 [y], 1"})
            .thread("t2", 2, 0, {"ld.acquire.gpu.u32 r2, [y]",
                                 "ld.relaxed.gpu.u32 r3, [x]"})
            .permit("t2.r2 == 0")
            .build();
    Program p(test, ProxyMode::Ptx75);
    EventId w_x = eid(p, [](const Event &e) {
        return e.isWrite() && !e.isInit && e.location == 0 &&
               e.thread == 0;
    });
    EventId r1_x = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 1;
    });
    EventId w_y = eid(p, [](const Event &e) {
        return e.isWrite() && e.thread == 1;
    });
    EventId r2_y = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 2 && e.isStrong() &&
               litmus::hasAcquire(e.sem);
    });
    EventId r3_x = eid(p, [](const Event &e) {
        return e.isRead() && e.thread == 2 && !litmus::hasAcquire(e.sem);
    });
    Relation rf(p.size());
    rf.insert(w_x, r1_x);
    rf.insert(w_y, r2_y);
    rf.insert(p.initWrite(p.event(r3_x).location), r3_x);
    auto d = derive(p, rf);
    // No base causality from w_x (its own thread does nothing else).
    EXPECT_FALSE(d.ppbc.contains(w_x, r3_x));
    // But observation followed by ppbc reaches the final read.
    EXPECT_TRUE(d.obs.contains(w_x, r1_x));
    EXPECT_TRUE(d.ppbc.contains(r1_x, r3_x));
    EXPECT_TRUE(d.cause.contains(w_x, r3_x));
}

TEST(Derived, DeadWritesDropOut)
{
    auto test = LitmusBuilder("dead")
                    .thread("t0", 0, 0, {"atom.cas.u32 r1, [x], 5, 9"})
                    .thread("t1", 1, 0, {"ld.relaxed.gpu.u32 r2, [x]"})
                    .permit("t0.r1 == 0")
                    .build();
    Program p(test, ProxyMode::Ptx75);
    EventId cas_r = eid(p, [](const Event &e) {
        return e.isRead() && e.isAtomic();
    });
    EventId cas_w = p.event(cas_r).rmwPartner;
    Relation rf = allInitRf(p);
    std::vector<char> live(p.size(), 1);
    live[cas_w] = 0; // the CAS failed
    auto d = computeDerived(p, rf, live);
    for (EventId r : p.reads()) {
        EXPECT_FALSE(d.msRf.contains(cas_w, r));
        EXPECT_FALSE(d.ppbc.contains(cas_w, r));
    }
}

} // namespace
