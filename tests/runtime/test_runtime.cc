/**
 * @file
 * Tests for the batch runtime: the thread pool runs everything it is
 * given, parallelFor covers every index exactly once and keeps its
 * determinism contract (results by index, per-worker observability
 * sessions merged in order, lowest-index error wins), and the
 * registry/tracer merge primitives behave as documented.
 */

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "runtime/parallel.hh"
#include "runtime/thread_pool.hh"

namespace {

using namespace mixedproxy;
using runtime::ParallelOptions;
using runtime::parallelFor;
using runtime::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, ZeroThreadsIsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool stays usable.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

class ParallelForJobs : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ParallelForJobs, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 37;
    std::vector<int> hits(n, 0);
    ParallelOptions par;
    par.jobs = GetParam();
    parallelFor(n, par, [&](std::size_t i, obs::Session *) {
        hits[i]++;
    });
    for (std::size_t i = 0; i < n; i++)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST_P(ParallelForJobs, MergedCountersAreJobsInvariant)
{
    obs::Session session;
    session.enable();
    ParallelOptions par;
    par.jobs = GetParam();
    par.session = &session;
    parallelFor(20, par, [&](std::size_t i, obs::Session *s) {
        ASSERT_NE(s, nullptr);
        s->metrics.add("work.items");
        s->metrics.add("work.weight", i);
    });
    session.disable();
    EXPECT_EQ(session.metrics.counter("work.items"), 20u);
    EXPECT_EQ(session.metrics.counter("work.weight"), 190u); // 0+..+19
}

TEST_P(ParallelForJobs, BodySessionIsBoundAsCurrent)
{
    obs::Session session;
    session.enable();
    ParallelOptions par;
    par.jobs = GetParam();
    par.session = &session;
    parallelFor(8, par, [&](std::size_t, obs::Session *s) {
        // The ambient binding and the explicit argument agree, so
        // engine code using either records into the same place.
        EXPECT_EQ(obs::current(), s);
        obs::count("ambient.count");
    });
    session.disable();
    EXPECT_EQ(session.metrics.counter("ambient.count"), 8u);
}

TEST_P(ParallelForJobs, LowestIndexExceptionWins)
{
    ParallelOptions par;
    par.jobs = GetParam();
    try {
        parallelFor(16, par, [&](std::size_t i, obs::Session *) {
            if (i == 3 || i == 11)
                throw std::runtime_error("fail at " +
                                         std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "fail at 3");
    }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ParallelForJobs,
                         ::testing::Values(1, 2, 4, 16));

TEST(ParallelFor, NotObservingPassesNullSession)
{
    ParallelOptions par;
    par.jobs = 4;
    std::atomic<int> nulls{0};
    parallelFor(8, par, [&](std::size_t, obs::Session *s) {
        if (s == nullptr && !obs::enabled())
            nulls.fetch_add(1);
    });
    EXPECT_EQ(nulls.load(), 8);
}

TEST(ParallelFor, WorkerSpansCarryDistinctThreadIds)
{
    obs::Session session;
    session.enable();
    ParallelOptions par;
    par.jobs = 4;
    par.session = &session;
    parallelFor(32, par, [&](std::size_t, obs::Session *) {
        obs::Span span("unit");
    });
    session.disable();
    ASSERT_EQ(session.tracer.events().size(), 32u);
    std::set<int> tids;
    for (const auto &event : session.tracer.events()) {
        EXPECT_EQ(event.name, "unit");
        EXPECT_GE(event.tid, 1); // workers are numbered from 1
        tids.insert(event.tid);
    }
    EXPECT_LE(tids.size(), 4u);
}

TEST(ParallelFor, SerialPathRecordsOnMainLane)
{
    obs::Session session;
    session.enable();
    ParallelOptions par;
    par.jobs = 1;
    par.session = &session;
    parallelFor(3, par, [&](std::size_t, obs::Session *) {
        obs::Span span("unit");
    });
    session.disable();
    ASSERT_EQ(session.tracer.events().size(), 3u);
    for (const auto &event : session.tracer.events())
        EXPECT_EQ(event.tid, 0);
}

TEST(ParallelFor, DisabledParentSessionRecordsNothing)
{
    obs::Session session; // never enabled
    ParallelOptions par;
    par.jobs = 4;
    par.session = &session;
    parallelFor(8, par, [&](std::size_t, obs::Session *s) {
        EXPECT_EQ(s, nullptr);
        obs::count("should.not.appear");
    });
    EXPECT_TRUE(session.metrics.empty());
    EXPECT_TRUE(session.tracer.empty());
}

TEST(MetricsMerge, CountersAddGaugesOverwriteTimersCombine)
{
    obs::MetricsRegistry a;
    a.add("c", 3);
    a.set("g", 1.0);
    a.record("t", 0.5);
    a.record("t", 1.5);

    obs::MetricsRegistry b;
    b.add("c", 4);
    b.add("only_b", 1);
    b.set("g", 2.0);
    b.record("t", 0.25);
    b.record("other", 9.0);

    a.mergeFrom(b);
    EXPECT_EQ(a.counter("c"), 7u);
    EXPECT_EQ(a.counter("only_b"), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 2.0);

    auto t = a.timer("t");
    EXPECT_EQ(t.count, 3u);
    EXPECT_DOUBLE_EQ(t.total, 2.25);
    EXPECT_DOUBLE_EQ(t.min, 0.25);
    EXPECT_DOUBLE_EQ(t.max, 1.5);
    auto other = a.timer("other");
    EXPECT_EQ(other.count, 1u);
    EXPECT_DOUBLE_EQ(other.max, 9.0);
}

TEST(MetricsMerge, MergeOrderIsPartitionIndependentForAggregates)
{
    // Two different partitions of the same samples merge to the same
    // streaming aggregates — the property the jobs-invariance of
    // --stats-json timer counts rests on.
    obs::MetricsRegistry left1;
    left1.record("t", 1.0);
    left1.record("t", 4.0);
    obs::MetricsRegistry right1;
    right1.record("t", 2.0);

    obs::MetricsRegistry left2;
    left2.record("t", 1.0);
    obs::MetricsRegistry right2;
    right2.record("t", 4.0);
    right2.record("t", 2.0);

    obs::MetricsRegistry merged1;
    merged1.mergeFrom(left1);
    merged1.mergeFrom(right1);
    obs::MetricsRegistry merged2;
    merged2.mergeFrom(left2);
    merged2.mergeFrom(right2);

    auto t1 = merged1.timer("t");
    auto t2 = merged2.timer("t");
    EXPECT_EQ(t1.count, t2.count);
    EXPECT_DOUBLE_EQ(t1.total, t2.total);
    EXPECT_DOUBLE_EQ(t1.min, t2.min);
    EXPECT_DOUBLE_EQ(t1.max, t2.max);
    EXPECT_DOUBLE_EQ(t1.p50, t2.p50); // sorted percentile, under cap
}

TEST(MetricsMerge, SampleRetentionStaysBounded)
{
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    for (std::size_t i = 0;
         i < obs::MetricsRegistry::kMaxSamplesPerTimer; i++) {
        a.record("t", 1.0);
        b.record("t", 2.0);
    }
    a.mergeFrom(b);
    auto t = a.timer("t");
    // Every sample is counted in the streaming aggregates...
    EXPECT_EQ(t.count, 2 * obs::MetricsRegistry::kMaxSamplesPerTimer);
    EXPECT_DOUBLE_EQ(t.max, 2.0);
    // ...while the retained-percentile prefix stays bounded (all 1.0
    // here, because a's samples filled the cap first).
    EXPECT_DOUBLE_EQ(t.p95, 1.0);
}

TEST(TracerAppend, ConcatenatesPreservingOrder)
{
    obs::Tracer a;
    a.record({"first", 0.0, 1.0, 0, 0});
    obs::Tracer b;
    b.record({"second", 2.0, 1.0, 0, 1});
    b.record({"third", 4.0, 1.0, 1, 1});
    a.append(b);
    ASSERT_EQ(a.events().size(), 3u);
    EXPECT_EQ(a.events()[0].name, "first");
    EXPECT_EQ(a.events()[1].name, "second");
    EXPECT_EQ(a.events()[2].name, "third");
    EXPECT_EQ(a.events()[2].tid, 1);
}

} // namespace
