/**
 * @file
 * Equivalence tests for the checker's analysis-informed single-proxy
 * fast path: on every shipped corpus test and representative builtins,
 * the outcome set with the fast path enabled is identical to the full
 * per-candidate proxy-rule evaluation.
 */

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "model/checker.hh"

namespace {

using namespace mixedproxy;

model::CheckResult
checkWith(const litmus::LitmusTest &test, bool fastPath)
{
    model::CheckOptions opts;
    opts.collectWitnesses = false;
    opts.staticFastPath = fastPath;
    return model::Checker(opts).check(test);
}

void
expectIdenticalVerdicts(const litmus::LitmusTest &test)
{
    auto fast = checkWith(test, true);
    auto slow = checkWith(test, false);
    EXPECT_EQ(fast.outcomes, slow.outcomes) << test.name();
    ASSERT_EQ(fast.assertions.size(), slow.assertions.size());
    for (std::size_t i = 0; i < fast.assertions.size(); i++) {
        EXPECT_EQ(fast.assertions[i].passed, slow.assertions[i].passed)
            << test.name() << " assertion " << i;
    }
}

TEST(FastPath, SingleProxyDetection)
{
    auto mp = litmus::testByName("fig9_message_passing");
    EXPECT_FALSE(
        model::Program(mp, model::ProxyMode::Ptx75).usesMixedProxies());

    // A non-generic access makes the test mixed-proxy.
    auto fig4 = litmus::testByName("fig4_const_alias_nofence");
    EXPECT_TRUE(model::Program(fig4, model::ProxyMode::Ptx75)
                    .usesMixedProxies());

    // So does generic aliasing, even with no non-generic access: two
    // virtual addresses of one location are two generic proxies.
    auto aliased = litmus::LitmusBuilder("alias_only")
                       .alias("y", "x")
                       .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                       .thread("t1", 0, 0, {"ld.global.u32 r0, [y]"})
                       .permit("t1.r0 == 0")
                       .build();
    EXPECT_TRUE(model::Program(aliased, model::ProxyMode::Ptx75)
                    .usesMixedProxies());
}

TEST(FastPath, IdenticalOutcomesOnCorpus)
{
    std::size_t seen = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             MIXEDPROXY_CORPUS_DIR)) {
        if (entry.path().extension() != ".litmus")
            continue;
        seen++;
        expectIdenticalVerdicts(
            litmus::parseTestFile(entry.path().string()));
    }
    EXPECT_GE(seen, 10u);
}

TEST(FastPath, IdenticalOutcomesOnRepresentativeBuiltins)
{
    for (const char *name :
         {"fig2_iriw_weak", "fig2_iriw_fence_sc", "fig9_message_passing",
          "fig4_const_alias_nofence", "fig8a_alias_fence",
          "fig8e_cross_cta_wrong_side"}) {
        expectIdenticalVerdicts(litmus::testByName(name));
    }
}

} // namespace
