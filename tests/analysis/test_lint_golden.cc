/**
 * @file
 * Golden-file test for the lint corpus: `nvlitmus --lint-only` over
 * tests/analysis/cases/ must reproduce the checked-in transcript
 * byte-for-byte. The analyzer's stable diagnostic IDs (E001, W101, …)
 * and the canonical report ordering (analysis/diagnostic.hh
 * orderedBefore) are output contracts — this test is what enforces
 * them, and the CI lint-corpus job byte-compares the same transcript
 * against the installed binary. Regenerate with:
 *
 *   build/tools/nvlitmus --lint-only tests/analysis/cases/*.litmus \
 *       > tests/analysis/goldens/lint_corpus.golden
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nvlitmus/driver.hh"

namespace {

using namespace mixedproxy;

TEST(LintGolden, CorpusTranscriptIsByteIdentical)
{
    namespace fs = std::filesystem;

    // Shell-glob order (lexicographic), exactly how the golden was
    // produced.
    std::vector<std::string> inputs;
    for (const auto &entry :
         fs::directory_iterator(MIXEDPROXY_ANALYSIS_CASES_DIR)) {
        if (entry.path().extension() == ".litmus")
            inputs.push_back(entry.path().string());
    }
    std::sort(inputs.begin(), inputs.end());
    ASSERT_FALSE(inputs.empty());

    std::vector<std::string> args = {"--lint-only"};
    args.insert(args.end(), inputs.begin(), inputs.end());

    std::ostringstream out, err;
    int code = nvlitmus::runCli(args, out, err);
    EXPECT_EQ(code, 1) << err.str(); // the corpus contains findings

    std::ifstream golden(std::string(MIXEDPROXY_ANALYSIS_GOLDEN_DIR) +
                         "/lint_corpus.golden");
    ASSERT_TRUE(golden.is_open());
    std::ostringstream expected;
    expected << golden.rdbuf();

    EXPECT_EQ(out.str(), expected.str())
        << "lint output drifted from the golden; if the change is "
           "intentional, regenerate tests/analysis/goldens/"
           "lint_corpus.golden (see file header)";
}

} // namespace
