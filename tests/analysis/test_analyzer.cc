/**
 * @file
 * Tests for the static mixed-proxy analyzer: each diagnostic kind fires
 * on a purpose-built case file, and the analyzer is silent (at warning
 * severity and above) on every race-free test of the shipped corpus.
 */

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"

namespace {

using namespace mixedproxy;
using analysis::AnalysisResult;
using analysis::Diagnostic;
using analysis::DiagnosticKind;
using analysis::Severity;

AnalysisResult
analyzeCase(const std::string &file)
{
    return analysis::analyze(litmus::parseTestFile(
        std::string(MIXEDPROXY_ANALYSIS_CASES_DIR) + "/" + file));
}

std::vector<const Diagnostic *>
ofKind(const AnalysisResult &result, DiagnosticKind kind)
{
    std::vector<const Diagnostic *> found;
    for (const auto &d : result.diagnostics) {
        if (d.kind == kind)
            found.push_back(&d);
    }
    return found;
}

TEST(Analyzer, RacyMpIsFlaggedAsRace)
{
    auto result = analyzeCase("racy_mp.litmus");
    EXPECT_TRUE(result.mixedProxies);
    EXPECT_FALSE(result.clean());
    ASSERT_EQ(result.count(Severity::Error), 1u);

    auto races = ofKind(result, DiagnosticKind::MixedProxyRace);
    ASSERT_EQ(races.size(), 1u);
    const Diagnostic &race = *races[0];
    EXPECT_NE(race.message.find("generic"), std::string::npos);
    EXPECT_NE(race.message.find("constant"), std::string::npos);
    EXPECT_NE(race.hint.find("fence.proxy.constant"), std::string::npos)
        << race.hint;

    // Both endpoints are referenced, with 1-based source lines.
    ASSERT_EQ(race.where.size(), 2u);
    EXPECT_GT(race.where[0].sourceLine, 0);
    EXPECT_GT(race.where[1].sourceLine, 0);
}

TEST(Analyzer, BridgedCounterpartIsClean)
{
    auto result = analyzeCase("bridged_clean.litmus");
    EXPECT_TRUE(result.mixedProxies);
    EXPECT_TRUE(result.clean());
    EXPECT_TRUE(result.diagnostics.empty()) << result.render();
}

TEST(Analyzer, TrailingProxyFenceIsRedundant)
{
    auto result = analyzeCase("redundant_fence.litmus");
    EXPECT_EQ(result.count(Severity::Error), 0u) << result.render();

    auto redundant = ofKind(result, DiagnosticKind::RedundantFence);
    ASSERT_EQ(redundant.size(), 1u) << result.render();
    // The trailing fence (4th instruction) is flagged, not the bridge.
    ASSERT_EQ(redundant[0]->where.size(), 1u);
    EXPECT_EQ(redundant[0]->where[0].index, 3);
}

TEST(Analyzer, FenceKindMatchingNoProxyIsFlagged)
{
    auto result = analyzeCase("unmatched_kind.litmus");
    EXPECT_FALSE(result.mixedProxies);
    EXPECT_EQ(result.count(Severity::Error), 0u);

    auto unmatched = ofKind(result, DiagnosticKind::UnmatchedFenceKind);
    ASSERT_EQ(unmatched.size(), 1u) << result.render();
    EXPECT_NE(unmatched[0]->message.find("texture"), std::string::npos);
    // UnmatchedFenceKind subsumes RedundantFence for the same fence.
    EXPECT_TRUE(ofKind(result, DiagnosticKind::RedundantFence).empty());
}

TEST(Analyzer, FenceDominatedByStrongerNeighborIsShadowed)
{
    auto result = analyzeCase("shadowed_fence.litmus");
    auto shadowed = ofKind(result, DiagnosticKind::ShadowedFence);
    ASSERT_EQ(shadowed.size(), 1u) << result.render();
    // The weaker fence.acq_rel.cta (2nd instruction) is the victim.
    ASSERT_EQ(shadowed[0]->where.size(), 1u);
    EXPECT_EQ(shadowed[0]->where[0].index, 1);
    EXPECT_NE(shadowed[0]->message.find("fence.sc.sys"),
              std::string::npos);
}

TEST(Analyzer, LeadingFenceIsVacuous)
{
    auto result = analyzeCase("vacuous_fence.litmus");
    auto vacuous = ofKind(result, DiagnosticKind::VacuousFence);
    ASSERT_EQ(vacuous.size(), 1u) << result.render();
    EXPECT_NE(vacuous[0]->message.find("first"), std::string::npos);
}

TEST(Analyzer, UnreadRegisterIsANote)
{
    auto result = analyzeCase("unread_register.litmus");
    // Advisory only: the test is still "clean" for lint exit purposes.
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.count(Severity::Note), 1u) << result.render();

    auto unread = ofKind(result, DiagnosticKind::UnreadRegister);
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_NE(unread[0]->message.find("t0.r0"), std::string::npos);
    EXPECT_EQ(unread[0]->where[0].index, 0);
}

TEST(Analyzer, DiagnosticsAreSortedBySeverity)
{
    // fig8e has both an error (race) and a warning (useless fence).
    auto result = analysis::analyze(litmus::parseTestFile(
        std::string(MIXEDPROXY_CORPUS_DIR) + "/fig8e.litmus"));
    ASSERT_GE(result.diagnostics.size(), 2u);
    EXPECT_TRUE(std::is_sorted(
        result.diagnostics.begin(), result.diagnostics.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            return static_cast<int>(a.severity) >
                   static_cast<int>(b.severity);
        }));
}

TEST(Analyzer, RenderMentionsEverySeverityBucket)
{
    auto result = analyzeCase("racy_mp.litmus");
    std::string text = result.render();
    EXPECT_NE(text.find("lint lint_racy_mp"), std::string::npos) << text;
    EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
    EXPECT_NE(text.find("mixed-proxy-race"), std::string::npos) << text;
    EXPECT_NE(text.find("hint:"), std::string::npos) << text;
}

TEST(Analyzer, WorksOnProgrammaticTests)
{
    // No source lines available; diagnostics still carry instruction
    // indices and rendered text.
    auto test = litmus::LitmusBuilder("prog")
                    .alias("c", "g")
                    .thread("t0", 0, 0,
                            {"st.global.u32 [g], 1",
                             "st.release.gpu.u32 [f], 1"})
                    .thread("t1", 0, 0,
                            {"ld.acquire.gpu.u32 r0, [f]",
                             "ld.const.u32 r1, [c]"})
                    .permit("t1.r0 == 1 && t1.r1 == 0")
                    .build();
    auto result = analysis::analyze(test);
    auto races = ofKind(result, DiagnosticKind::MixedProxyRace);
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0]->where[0].sourceLine, 0);
    EXPECT_FALSE(races[0]->where[0].text.empty());
}

/**
 * Corpus-wide false-positive guard: of the shipped litmus corpus, only
 * the two deliberately racy paper reproductions (Fig. 4 and Fig. 8e)
 * may produce warning-or-worse findings, and those two must produce a
 * mixed-proxy race error.
 */
TEST(Analyzer, CorpusOnlyRacyFilesAreFlagged)
{
    const std::set<std::string> racy = {"fig4.litmus", "fig8e.litmus"};
    std::size_t seen = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             MIXEDPROXY_CORPUS_DIR)) {
        if (entry.path().extension() != ".litmus")
            continue;
        seen++;
        auto test = litmus::parseTestFile(entry.path().string());
        auto result = analysis::analyze(test);
        std::string file = entry.path().filename().string();
        if (racy.count(file)) {
            EXPECT_FALSE(result.clean()) << file;
            EXPECT_GE(ofKind(result, DiagnosticKind::MixedProxyRace)
                          .size(),
                      1u)
                << file << "\n"
                << result.render();
        } else {
            EXPECT_TRUE(result.clean())
                << file << "\n" << result.render();
        }
    }
    EXPECT_GE(seen, 10u);
}

/** The analyzer is silent at error severity on every built-in test
 *  that ships a proxy fence where one is needed. */
TEST(Analyzer, BuiltinFencedTestsHaveNoRaceErrors)
{
    for (const char *name :
         {"fig8a_alias_fence", "fig9_message_passing",
          "fig8f_double_fence_ordered"}) {
        auto result = analysis::analyze(litmus::testByName(name));
        EXPECT_EQ(result.count(Severity::Error), 0u)
            << name << "\n" << result.render();
    }
}

} // namespace
