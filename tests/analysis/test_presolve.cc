/**
 * @file
 * Tests for the static axiomatic pre-solver (docs/static_solver.md):
 * the may/must closures, the checker's exact single-candidate
 * evaluator, the StaticSolver verdicts, and — the load-bearing
 * property — a corpus-wide differential suite asserting that every
 * conclusive static verdict equals the enumerated one.
 */

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/presolve/approx.hh"
#include "analysis/presolve/presolve.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "model/checker.hh"
#include "model/program.hh"

namespace {

using namespace mixedproxy;
namespace presolve = mixedproxy::analysis::presolve;

/** First non-init event satisfying @p pred, or -1. */
template <typename Pred>
relation::EventId
findEvent(const model::Program &program, Pred pred)
{
    for (const model::Event &e : program.events()) {
        if (!e.isInit && pred(e))
            return e.id;
    }
    return -1;
}

// ---------------------------------------------------------------------
// May / must closures
// ---------------------------------------------------------------------

TEST(Approx, MustIsSubsetOfMayOnEveryBuiltin)
{
    for (const auto &test : litmus::allTests()) {
        model::Program program(test, model::ProxyMode::Ptx75);
        auto may = presolve::mayBaseCausality(program);
        auto must = presolve::mustBaseCausality(program);
        for (std::size_t a = 0; a < program.size(); a++) {
            for (std::size_t b = 0; b < program.size(); b++) {
                if (must.contains(a, b))
                    EXPECT_TRUE(may.contains(a, b))
                        << test.name() << " " << a << "->" << b;
            }
        }
    }
}

TEST(Approx, MayIncludesPotentialSynchronization)
{
    // Release write / acquire read across threads: no must edge (it
    // needs an rf), but the may closure includes the potential sw.
    auto test = litmus::testByName("fig9_message_passing");
    model::Program program(test, model::ProxyMode::Ptx75);
    auto may = presolve::mayBaseCausality(program);
    auto must = presolve::mustBaseCausality(program);

    auto rel = findEvent(program, [](const model::Event &e) {
        return e.isWrite() && litmus::hasRelease(e.sem);
    });
    auto acq = findEvent(program, [](const model::Event &e) {
        return e.isRead() && litmus::hasAcquire(e.sem);
    });
    ASSERT_GE(rel, 0);
    ASSERT_GE(acq, 0);
    EXPECT_TRUE(may.contains(rel, acq));
    EXPECT_FALSE(must.contains(rel, acq));
}

TEST(Approx, MustIsProgramOrderWithinAThread)
{
    auto test = litmus::testByName("fig9_message_passing");
    model::Program program(test, model::ProxyMode::Ptx75);
    auto must = presolve::mustBaseCausality(program);
    for (std::size_t a = 0; a < program.size(); a++) {
        for (std::size_t b = 0; b < program.size(); b++) {
            if (program.po().contains(a, b))
                EXPECT_TRUE(must.contains(a, b));
        }
    }
}

TEST(Approx, MustProxyPreservedNeedsTheFenceChain)
{
    // One thread writes through [x] and reads it back through the
    // alias [y]: a mixed-proxy (two-generic-proxies) pair. With the
    // alias proxy fence between them §6.2.4 clause (3) bridges the
    // pair along the must path; without it no clause applies and the
    // pair must NOT be statically proxy-preserved.
    auto fenced = litmus::LitmusBuilder("alias_fenced")
                      .alias("y", "x")
                      .thread("t0", 0, 0,
                              {"st.global.u32 [x], 1",
                               "fence.proxy.alias",
                               "ld.global.u32 r0, [y]"})
                      .build();
    auto unfenced = litmus::LitmusBuilder("alias_unfenced")
                        .alias("y", "x")
                        .thread("t0", 0, 0,
                                {"st.global.u32 [x], 1",
                                 "ld.global.u32 r0, [y]"})
                        .build();

    for (bool with_fence : {true, false}) {
        model::Program program(with_fence ? fenced : unfenced,
                               model::ProxyMode::Ptx75);
        ASSERT_TRUE(program.usesMixedProxies());
        auto ppbc = presolve::mustProxyPreserved(program);
        auto w = findEvent(program, [](const model::Event &e) {
            return e.isWrite();
        });
        auto r = findEvent(program, [](const model::Event &e) {
            return e.isRead();
        });
        ASSERT_GE(w, 0);
        ASSERT_GE(r, 0);
        EXPECT_EQ(ppbc.contains(w, r), with_fence);
    }
}

TEST(Approx, MustProxyPreservedSameAddressGenericPair)
{
    // Same virtual address, generic proxy both sides: clause (1)
    // orders the must-related pair with no fence needed.
    auto test = litmus::LitmusBuilder("same_va")
                    .thread("t0", 0, 0,
                            {"st.global.u32 [x], 1",
                             "ld.global.u32 r0, [x]"})
                    .build();
    model::Program program(test, model::ProxyMode::Ptx75);
    auto ppbc = presolve::mustProxyPreserved(program);
    auto w = findEvent(program, [](const model::Event &e) {
        return e.isWrite();
    });
    auto r = findEvent(program, [](const model::Event &e) {
        return e.isRead();
    });
    EXPECT_TRUE(ppbc.contains(w, r));
}

// ---------------------------------------------------------------------
// model::evaluateCandidate — the exact single-candidate axiom core
// ---------------------------------------------------------------------

TEST(EvaluateCandidate, AcceptsTheObviousExecution)
{
    auto test = litmus::LitmusBuilder("wr")
                    .thread("t0", 0, 0,
                            {"st.global.u32 [x], 1",
                             "ld.global.u32 r0, [x]"})
                    .build();
    model::Program program(test, model::ProxyMode::Ptx75);
    auto w = findEvent(program, [](const model::Event &e) {
        return e.isWrite();
    });
    auto r = findEvent(program, [](const model::Event &e) {
        return e.isRead();
    });

    model::CandidateExecution candidate;
    candidate.sourceOf[r] = w;
    candidate.coOrders[program.event(w).location] = {w};
    auto outcome = model::evaluateCandidate(program, candidate);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->reg("t0", "r0"), 1u);
    EXPECT_EQ(outcome->mem("x"), 1u);
}

TEST(EvaluateCandidate, RejectsCoherenceViolation)
{
    // Reading init past a same-thread po-earlier store violates
    // SC-per-Location (the fr edge closes a po cycle in the clique).
    auto test = litmus::LitmusBuilder("wr_stale")
                    .thread("t0", 0, 0,
                            {"st.global.u32 [x], 1",
                             "ld.global.u32 r0, [x]"})
                    .build();
    model::Program program(test, model::ProxyMode::Ptx75);
    auto w = findEvent(program, [](const model::Event &e) {
        return e.isWrite();
    });
    auto r = findEvent(program, [](const model::Event &e) {
        return e.isRead();
    });

    model::CandidateExecution candidate;
    candidate.sourceOf[r] = program.initWrite(program.event(w).location);
    candidate.coOrders[program.event(w).location] = {w};
    EXPECT_FALSE(
        model::evaluateCandidate(program, candidate).has_value());
}

TEST(EvaluateCandidate, RejectsMalformedCandidates)
{
    auto test = litmus::LitmusBuilder("wr2")
                    .thread("t0", 0, 0,
                            {"st.global.u32 [x], 1",
                             "ld.global.u32 r0, [x]"})
                    .build();
    model::Program program(test, model::ProxyMode::Ptx75);
    auto w = findEvent(program, [](const model::Event &e) {
        return e.isWrite();
    });

    // Unmapped read.
    model::CandidateExecution no_rf;
    no_rf.coOrders[program.event(w).location] = {w};
    EXPECT_FALSE(model::evaluateCandidate(program, no_rf).has_value());

    // Coherence order that is not a permutation of the live writes.
    auto r = findEvent(program, [](const model::Event &e) {
        return e.isRead();
    });
    model::CandidateExecution bad_co;
    bad_co.sourceOf[r] = w;
    bad_co.coOrders[program.event(w).location] = {w, w};
    EXPECT_FALSE(model::evaluateCandidate(program, bad_co).has_value());
}

// ---------------------------------------------------------------------
// StaticSolver verdicts
// ---------------------------------------------------------------------

TEST(StaticSolver, DischargesMessagePassingCompletely)
{
    auto test = litmus::testByName("fig9_message_passing");
    model::Program program(test, model::ProxyMode::Ptx75);
    presolve::StaticSolver solver;
    auto discharge = solver.presolve(program);
    EXPECT_TRUE(discharge.discharged);
    ASSERT_EQ(discharge.assertions.size(), test.assertions().size());
    for (const auto &v : discharge.assertions) {
        EXPECT_TRUE(v.conclusive);
        EXPECT_TRUE(v.passed);
        EXPECT_TRUE(v.method == "unsat" || v.method == "witness")
            << v.method;
    }
}

TEST(StaticSolver, IriwStaysInconclusive)
{
    // The weak IRIW outcome needs a genuinely non-SC execution: no SC
    // witness produces it and the refutation engine cannot rule it
    // out, so the pre-solver must say "inconclusive" — never guess.
    auto test = litmus::testByName("fig2_iriw_weak");
    model::Program program(test, model::ProxyMode::Ptx75);
    presolve::StaticSolver solver;
    auto discharge = solver.presolve(program);
    EXPECT_FALSE(discharge.discharged);
    ASSERT_EQ(discharge.assertions.size(), 1u);
    EXPECT_FALSE(discharge.assertions[0].conclusive);
}

TEST(StaticSolver, DischargeIsAllOrNothing)
{
    // lb_data_dependency: one of its two assertions is statically
    // conclusive, the other is not — so the check as a whole must not
    // claim discharge.
    auto test = litmus::testByName("lb_data_dependency");
    model::Program program(test, model::ProxyMode::Ptx75);
    presolve::StaticSolver solver;
    auto discharge = solver.presolve(program);
    ASSERT_EQ(discharge.assertions.size(), 2u);
    bool any_conclusive = false, all_conclusive = true;
    for (const auto &v : discharge.assertions) {
        any_conclusive |= v.conclusive;
        all_conclusive &= v.conclusive;
    }
    EXPECT_TRUE(any_conclusive);
    EXPECT_FALSE(all_conclusive);
    EXPECT_FALSE(discharge.discharged);
}

TEST(StaticSolver, NoAssertionsMeansNoDischarge)
{
    auto test = litmus::LitmusBuilder("bare")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1"})
                    .build();
    model::Program program(test, model::ProxyMode::Ptx75);
    presolve::StaticSolver solver;
    auto discharge = solver.presolve(program);
    EXPECT_FALSE(discharge.discharged);
    EXPECT_TRUE(discharge.assertions.empty());
}

// ---------------------------------------------------------------------
// Checker integration
// ---------------------------------------------------------------------

model::CheckResult
checkWithPolicy(const litmus::LitmusTest &test,
                model::PresolvePolicy policy,
                const model::Presolver *solver)
{
    model::CheckOptions opts;
    opts.collectWitnesses = false;
    opts.presolve = policy;
    opts.presolver = solver;
    return model::Checker(opts).check(test);
}

TEST(CheckerPresolve, OnPolicySkipsEnumerationWhenDischarged)
{
    presolve::StaticSolver solver;
    auto test = litmus::testByName("fig9_message_passing");
    auto result =
        checkWithPolicy(test, model::PresolvePolicy::On, &solver);
    ASSERT_TRUE(result.staticallyDischarged.has_value());
    EXPECT_TRUE(result.staticallyDischarged->discharged);
    EXPECT_TRUE(result.outcomes.empty());
    EXPECT_EQ(result.stats.candidateExecutions, 0u);
    EXPECT_TRUE(result.allPassed());
    EXPECT_NE(result.summary().find("statically discharged"),
              std::string::npos);
}

TEST(CheckerPresolve, OnPolicyFallsBackWhenInconclusive)
{
    presolve::StaticSolver solver;
    auto test = litmus::testByName("fig2_iriw_weak");
    auto result =
        checkWithPolicy(test, model::PresolvePolicy::On, &solver);
    ASSERT_TRUE(result.staticallyDischarged.has_value());
    EXPECT_FALSE(result.staticallyDischarged->discharged);
    // Fallback enumerated for real and produced the exact verdict.
    EXPECT_FALSE(result.outcomes.empty());
    auto baseline =
        checkWithPolicy(test, model::PresolvePolicy::Off, nullptr);
    EXPECT_EQ(result.outcomes, baseline.outcomes);
}

TEST(CheckerPresolve, OnlyPolicyNeverEnumerates)
{
    presolve::StaticSolver solver;
    auto test = litmus::testByName("fig2_iriw_weak");
    auto result =
        checkWithPolicy(test, model::PresolvePolicy::Only, &solver);
    EXPECT_TRUE(result.outcomes.empty());
    EXPECT_EQ(result.stats.candidateExecutions, 0u);
    ASSERT_EQ(result.assertions.size(), 1u);
    EXPECT_FALSE(result.assertions[0].passed);
    EXPECT_NE(
        result.assertions[0].detail.find("statically inconclusive"),
        std::string::npos);
}

// ---------------------------------------------------------------------
// Differential suite: static verdicts vs full enumeration, corpus-wide
// ---------------------------------------------------------------------

void
expectSoundVerdicts(const litmus::LitmusTest &test)
{
    presolve::StaticSolver solver;
    auto exact =
        checkWithPolicy(test, model::PresolvePolicy::Off, nullptr);
    if (exact.budgetExceeded)
        return; // nothing exact to compare against
    auto fused =
        checkWithPolicy(test, model::PresolvePolicy::On, &solver);
    auto static_only =
        checkWithPolicy(test, model::PresolvePolicy::Only, &solver);

    // presolve=on is always exact: verdict-for-verdict identical.
    ASSERT_EQ(fused.assertions.size(), exact.assertions.size())
        << test.name();
    for (std::size_t i = 0; i < exact.assertions.size(); i++) {
        EXPECT_EQ(fused.assertions[i].passed,
                  exact.assertions[i].passed)
            << test.name() << " assertion " << i;
    }

    // presolve=only: every *conclusive* verdict agrees with
    // enumeration (the soundness contract; inconclusive carries no
    // claim).
    ASSERT_TRUE(static_only.staticallyDischarged.has_value())
        << test.name();
    const auto &sd = *static_only.staticallyDischarged;
    for (std::size_t i = 0;
         i < sd.assertions.size() && i < exact.assertions.size(); i++) {
        if (!sd.assertions[i].conclusive)
            continue;
        EXPECT_EQ(sd.assertions[i].passed, exact.assertions[i].passed)
            << test.name() << " assertion " << i << " ("
            << sd.assertions[i].method << ": "
            << sd.assertions[i].detail << ")";
    }
}

TEST(PresolveDifferential, EveryBuiltinAgrees)
{
    std::size_t conclusive_somewhere = 0;
    for (const auto &test : litmus::allTests()) {
        expectSoundVerdicts(test);
        presolve::StaticSolver solver;
        model::Program program(test, model::ProxyMode::Ptx75);
        for (const auto &v : solver.presolve(program).assertions)
            conclusive_somewhere += v.conclusive ? 1 : 0;
    }
    // The pre-solver must actually bite on the corpus, not just stay
    // vacuously sound by answering "inconclusive" everywhere.
    EXPECT_GT(conclusive_somewhere, 20u);
}

TEST(PresolveDifferential, EveryCorpusFileAgrees)
{
    namespace fs = std::filesystem;
    for (const char *dir :
         {MIXEDPROXY_CORPUS_DIR, MIXEDPROXY_ANALYSIS_CASES_DIR}) {
        std::size_t seen = 0;
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (entry.path().extension() != ".litmus")
                continue;
            seen++;
            expectSoundVerdicts(
                litmus::parseTestFile(entry.path().string()));
        }
        EXPECT_GT(seen, 0u) << dir;
    }
}

} // namespace
