/**
 * @file
 * Randomized simulator tests, including the central soundness property:
 * every outcome the operational machine produces on the full litmus
 * corpus is allowed by the PTX 7.5 axiomatic model. This is the
 * repository's substitute for the paper's Alloy-based validation.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "microarch/simulator.hh"
#include "model/checker.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::microarch;

SimResult
simulate(const litmus::LitmusTest &test,
         CoherenceMode mode = CoherenceMode::Proxy,
         std::size_t iterations = 300)
{
    SimOptions opts;
    opts.iterations = iterations;
    opts.mode = mode;
    opts.seed = 12345;
    return Simulator(opts).run(test);
}

TEST(Simulator, DeterministicGivenSeed)
{
    const auto &test = litmus::testByName("fig4_const_alias_nofence");
    Simulator sim{SimOptions{}};
    auto a = sim.runOnce(test, 7);
    auto b = sim.runOnce(test, 7);
    EXPECT_EQ(a, b);
}

TEST(Simulator, Fig4BothOutcomesObserved)
{
    const auto &test = litmus::testByName("fig4_const_alias_nofence");
    auto result = simulate(test);
    litmus::Outcome stale;
    stale.registers["t0.r1"] = 0;
    stale.memory["global_ptr"] = 42;
    litmus::Outcome fresh;
    fresh.registers["t0.r1"] = 42;
    fresh.memory["global_ptr"] = 42;
    EXPECT_TRUE(result.histogram.count(stale)) << result.summary();
    EXPECT_TRUE(result.histogram.count(fresh)) << result.summary();
}

TEST(Simulator, ProxyFenceEliminatesStaleOutcome)
{
    const auto &test = litmus::testByName("fig4_const_alias_proxy_fence");
    auto result = simulate(test);
    for (const auto &[outcome, count] : result.histogram)
        EXPECT_EQ(outcome.reg("t0", "r1"), 42u) << outcome.toString();
}

TEST(Simulator, StoreBufferingObservedAndFencedAway)
{
    auto plain = simulate(litmus::testByName("sb_relaxed"),
                          CoherenceMode::Proxy, 500);
    bool saw_sb = false;
    for (const auto &[outcome, count] : plain.histogram) {
        if (outcome.reg("t0", "r1") == 0 && outcome.reg("t1", "r2") == 0)
            saw_sb = true;
    }
    EXPECT_TRUE(saw_sb) << plain.summary();

    auto fenced = simulate(litmus::testByName("sb_fence_sc"));
    for (const auto &[outcome, count] : fenced.histogram) {
        EXPECT_FALSE(outcome.reg("t0", "r1") == 0 &&
                     outcome.reg("t1", "r2") == 0)
            << outcome.toString();
    }
}

TEST(Simulator, HistogramCountsSumToIterations)
{
    auto result = simulate(litmus::testByName("fig9_message_passing"));
    std::size_t total = 0;
    for (const auto &[outcome, count] : result.histogram)
        total += count;
    EXPECT_EQ(total, result.iterations);
    EXPECT_GT(result.meanLatency(), 0.0);
    EXPECT_NE(result.summary().find("schedules"), std::string::npos);
}

// ---- Soundness: operational outcomes are a subset of model outcomes ---

class OperationalSoundness : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OperationalSoundness, ObservedSubsetOfPtx75Allowed)
{
    const auto &test = litmus::testByName(GetParam());
    model::CheckOptions mopts;
    mopts.collectWitnesses = false;
    auto allowed = model::Checker(mopts).check(test).outcomes;

    auto result = simulate(test, CoherenceMode::Proxy, 200);
    for (const auto &[outcome, count] : result.histogram) {
        EXPECT_TRUE(allowed.count(outcome))
            << test.name() << ": machine produced an outcome the model "
            << "forbids: " << outcome.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, OperationalSoundness,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// The fully coherent machine (§4.2 ablation) is stricter still: its
// outcomes are allowed even by the proxy-oblivious PTX 6.0 model.
class CoherentSoundness : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CoherentSoundness, CoherentSubsetOfPtx60Allowed)
{
    const auto &test = litmus::testByName(GetParam());
    model::CheckOptions mopts;
    mopts.collectWitnesses = false;
    mopts.mode = model::ProxyMode::Ptx60;
    auto allowed = model::Checker(mopts).check(test).outcomes;

    auto result = simulate(test, CoherenceMode::FullyCoherent, 100);
    for (const auto &[outcome, count] : result.histogram) {
        EXPECT_TRUE(allowed.count(outcome))
            << test.name() << ": coherent machine outcome not in PTX 6.0 "
            << "model: " << outcome.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CoherentSoundness,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// Fence-reuse mode (§4.3 ablation) is also sound w.r.t. the proxy model
// (it only adds flushes/invalidations).
class FenceReuseSoundness : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FenceReuseSoundness, FenceReuseSubsetOfPtx75Allowed)
{
    const auto &test = litmus::testByName(GetParam());
    model::CheckOptions mopts;
    mopts.collectWitnesses = false;
    auto allowed = model::Checker(mopts).check(test).outcomes;

    auto result = simulate(test, CoherenceMode::FenceReuse, 100);
    for (const auto &[outcome, count] : result.histogram) {
        EXPECT_TRUE(allowed.count(outcome))
            << test.name() << ": fence-reuse outcome not allowed: "
            << outcome.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, FenceReuseSoundness,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// Every `require` assertion must hold on every simulated outcome under
// all three machine modes (requirements are lower bounds on every
// implementation).
class RequireHolds : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RequireHolds, RequiredOutcomesHoldOperationally)
{
    const auto &test = litmus::testByName(GetParam());
    for (auto mode : {CoherenceMode::Proxy, CoherenceMode::FullyCoherent,
                      CoherenceMode::FenceReuse}) {
        auto result = simulate(test, mode, 100);
        for (const auto &assertion : test.assertions()) {
            if (assertion.kind != litmus::AssertKind::Require)
                continue;
            for (const auto &[outcome, count] : result.histogram) {
                EXPECT_TRUE(assertion.condition->evalBool(outcome))
                    << test.name() << " [" << toString(mode)
                    << "]: " << assertion.text
                    << " violated by " << outcome.toString();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, RequireHolds,
    ::testing::ValuesIn(litmus::testNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Simulator, CoherentModeCostsMore)
{
    // The §4.2 trade-off: correctness without fences, but translation
    // latency and invalidation traffic on the common path.
    const auto &test = litmus::testByName("fig9_message_passing");
    auto proxy = simulate(test, CoherenceMode::Proxy, 200);
    auto coherent = simulate(test, CoherenceMode::FullyCoherent, 200);
    EXPECT_EQ(proxy.stats.translations, 0u);
    EXPECT_GT(coherent.stats.translations, 0u);
}

TEST(Simulator, FenceReuseInflatesFenceWork)
{
    const auto &test = litmus::testByName("fig4_warmed_stale_hit");
    auto proxy = simulate(test, CoherenceMode::Proxy, 200);
    auto reuse = simulate(test, CoherenceMode::FenceReuse, 200);
    EXPECT_GT(reuse.stats.fenceInvalidations,
              proxy.stats.fenceInvalidations);
}

} // namespace
