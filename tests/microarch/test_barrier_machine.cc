/**
 * @file
 * Machine tests for the bar.sync rendezvous.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "microarch/machine.hh"
#include "microarch/simulator.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::microarch;
using litmus::LitmusBuilder;

bool
canStep(const Machine &machine, std::size_t thread)
{
    for (const auto &a : machine.actions()) {
        if (a.kind == Action::Kind::ThreadStep && a.thread == thread)
            return true;
    }
    return false;
}

void
step(Machine &machine, std::size_t thread)
{
    for (const auto &a : machine.actions()) {
        if (a.kind == Action::Kind::ThreadStep && a.thread == thread) {
            machine.execute(a);
            return;
        }
    }
    FAIL() << "thread " << thread << " cannot step";
}

TEST(BarrierMachine, BlocksUntilAllArrive)
{
    auto test = LitmusBuilder("block")
                    .thread("t0", 0, 0, {"bar.sync 0",
                                         "ld.global.u32 r1, [x]"})
                    .thread("t1", 0, 0, {"st.global.u32 [x], 1",
                                         "bar.sync 0"})
                    .permit("t0.r1 == 1")
                    .build();
    Machine machine(test);
    // t0 stands at its barrier but t1 has not arrived (its next
    // instruction is the store): t0 cannot pass yet.
    EXPECT_FALSE(canStep(machine, 0));
    EXPECT_TRUE(canStep(machine, 1));
    step(machine, 1); // t1's store; t1 now stands at the barrier
    // Arrival is implicit: both threads may now pass.
    EXPECT_TRUE(canStep(machine, 0));
    EXPECT_TRUE(canStep(machine, 1));
    step(machine, 0); // t0 passes
    step(machine, 0); // t0's load sees the store (shared SM)
    while (!machine.finished())
        machine.execute(machine.actions().front());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 1u);
}

TEST(BarrierMachine, PassedThreadDoesNotReblock)
{
    // One thread races ahead past the barrier while the other is still
    // before it in a later phase: per-instance arrival counting.
    auto test = LitmusBuilder("phases")
                    .thread("t0", 0, 0, {"bar.sync 0",
                                         "st.global.u32 [x], 1",
                                         "bar.sync 0"})
                    .thread("t1", 0, 0, {"bar.sync 0",
                                         "bar.sync 0"})
                    .permit("[x] == 1")
                    .build();
    Machine machine(test);
    // Both stand at phase 1: both may pass.
    EXPECT_TRUE(canStep(machine, 0));
    step(machine, 0); // t0 passes phase 1
    // t1 can still pass phase 1 (t0 already arrived and left).
    EXPECT_TRUE(canStep(machine, 1));
    step(machine, 1); // t1 passes phase 1; now stands at phase 2
    // t0 has not arrived at phase 2 (its next step is the store).
    EXPECT_FALSE(canStep(machine, 1));
    step(machine, 0); // t0's store; t0 now stands at phase 2
    EXPECT_TRUE(canStep(machine, 1));
    while (!machine.finished())
        machine.execute(machine.actions().front());
    EXPECT_EQ(machine.outcome().mem("x"), 1u);
}

TEST(BarrierMachine, CrossCtaBarriersIndependent)
{
    const auto &test = litmus::testByName("barrier_cross_cta_useless");
    Machine machine(test);
    // Each single-thread CTA passes its own barrier immediately.
    EXPECT_TRUE(canStep(machine, 0));
    EXPECT_TRUE(canStep(machine, 1));
}

TEST(BarrierMachine, NoDeadlockOnRegistryTests)
{
    SimOptions opts;
    opts.iterations = 200;
    Simulator sim(opts);
    for (const char *name :
         {"barrier_mp", "barrier_two_phase",
          "barrier_constant_with_fence", "barrier_cross_cta_useless"}) {
        EXPECT_NO_THROW(sim.run(litmus::testByName(name))) << name;
    }
}

TEST(BarrierMachine, DeadlockedIsDetectable)
{
    // Construct an (invalid) mismatched-barrier machine directly,
    // bypassing validation via two CTAs... validation makes this hard
    // to reach; instead verify deadlocked() is false during a normal
    // run.
    const auto &test = litmus::testByName("barrier_mp");
    Machine machine(test);
    while (!machine.finished()) {
        EXPECT_FALSE(machine.deadlocked());
        machine.execute(machine.actions().front());
    }
    EXPECT_FALSE(machine.deadlocked());
    EXPECT_TRUE(machine.finished());
}

} // namespace
