/**
 * @file
 * Deterministic machine tests: hand-picked schedules reproducing the
 * paper's microarchitectural scenarios (Fig. 4 paths 3a/3b, Fig. 6),
 * plus mode-specific behavior of the §4.2/§4.3 ablations.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "microarch/machine.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::microarch;
using litmus::LitmusBuilder;
using litmus::LitmusTest;

/** Step thread @p t once (the action must exist). */
void
step(Machine &machine, std::size_t t)
{
    for (const auto &a : machine.actions()) {
        if (a.kind == Action::Kind::ThreadStep && a.thread == t) {
            machine.execute(a);
            return;
        }
    }
    FAIL() << "thread " << t << " has no step action";
}

/** Drain every queue to completion. */
void
drainEverything(Machine &machine)
{
    while (true) {
        bool drained = false;
        for (const auto &a : machine.actions()) {
            if (a.kind != Action::Kind::ThreadStep) {
                machine.execute(a);
                drained = true;
                break;
            }
        }
        if (!drained)
            return;
    }
}

LitmusTest
fig4Test(bool proxy_fence)
{
    LitmusBuilder b("fig4");
    b.alias("c", "g");
    std::vector<std::string> instrs{"st.global.u32 [g], 42"};
    if (proxy_fence)
        instrs.push_back("fence.proxy.constant");
    instrs.push_back("ld.const.u32 r1, [c]");
    b.thread("t0", 0, 0, instrs);
    b.permit("t0.r1 == 0 || t0.r1 == 42");
    return b.build();
}

TEST(Machine, Fig4Path3bReordering)
{
    // The store is delayed in the generic path (queued, not drained);
    // the constant load passes it to the L2 and returns stale data.
    Machine machine(fig4Test(false));
    step(machine, 0);                 // st [g], 42 -> queued
    step(machine, 0);                 // ld.const [c] -> misses, reads L2
    drainEverything(machine);         // store finally reaches L2
    ASSERT_TRUE(machine.finished());
    auto outcome = machine.outcome();
    EXPECT_EQ(outcome.reg("t0", "r1"), 0u);
    EXPECT_EQ(outcome.mem("g"), 42u);
}

TEST(Machine, Fig4StoreDrainsFirst)
{
    // If the store wins the race, the load sees fresh data.
    Machine machine(fig4Test(false));
    step(machine, 0);
    drainEverything(machine);
    step(machine, 0);
    ASSERT_TRUE(machine.finished());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 42u);
}

TEST(Machine, Fig4Path3aStaleHit)
{
    // A warmed constant cache keeps returning the stale line even after
    // the store has fully drained: the 3a path.
    auto test = LitmusBuilder("fig4_warm")
                    .alias("c", "g")
                    .thread("t0", 0, 0, {"ld.const.u32 r0, [c]",
                                         "st.global.u32 [g], 42",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t0.r1 == 0")
                    .build();
    Machine machine(test);
    step(machine, 0);         // warm the constant cache (0)
    step(machine, 0);         // store
    drainEverything(machine); // store fully visible at L2
    step(machine, 0);         // constant load HITS the stale line
    ASSERT_TRUE(machine.finished());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 0u);
    EXPECT_GE(machine.stats().constHits, 1u);
}

TEST(Machine, ProxyFenceFixesFig4UnderEverySchedule)
{
    // With the constant proxy fence, both schedules give 42: the fence
    // drains the store and invalidates the constant cache.
    Machine machine(fig4Test(true));
    step(machine, 0); // st (queued)
    step(machine, 0); // fence.proxy.constant (drains + invalidates)
    step(machine, 0); // ld.const -> must read L2 -> 42
    drainEverything(machine);
    ASSERT_TRUE(machine.finished());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 42u);
}

TEST(Machine, GenericFenceDoesNotHelpFig4WarmHit)
{
    // fig4_warmed_stale_hit from the registry: the generic fence drains
    // the store but cannot invalidate the constant cache.
    const auto &test = litmus::testByName("fig4_warmed_stale_hit");
    Machine machine(test);
    while (!machine.finished()) {
        // Always prefer thread steps; drain only when forced. The store
        // is drained by the fence itself.
        auto actions = machine.actions();
        machine.execute(actions.front());
    }
    auto outcome = machine.outcome();
    EXPECT_EQ(outcome.reg("t0", "r1"), 0u);
    EXPECT_EQ(outcome.mem("global_ptr"), 42u);
}

TEST(Machine, SameVaForwardingKeepsIntraThreadCoherence)
{
    auto test = LitmusBuilder("fwd")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "st.global.u32 [x], 2",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 2")
                    .build();
    Machine machine(test);
    step(machine, 0);
    step(machine, 0);
    step(machine, 0); // load must forward the youngest queued store
    drainEverything(machine);
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 2u);
    EXPECT_EQ(machine.outcome().mem("x"), 2u); // per-tag FIFO drain
}

TEST(Machine, SurfaceStoreVisibleToSameSmSurfaceLoad)
{
    const auto &test = litmus::testByName("fig6_surface_same_cta");
    Machine machine(test);
    step(machine, 0); // sust (texture cache updated, queued)
    step(machine, 0); // suld hits the texture cache
    drainEverything(machine);
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 9u);
}

TEST(Machine, CrossSmSurfaceStaleWithoutEntryFence)
{
    // fig6_surface_cross_cta_writer_only, scheduled so the reader's
    // texture cache was warmed before the writer ran.
    auto test =
        LitmusBuilder("surf_warm")
            .thread("t0", 0, 0, {"sust.b.u32 [s], 9",
                                 "fence.proxy.surface",
                                 "st.release.gpu.u32 [f], 1"})
            .thread("t1", 1, 0, {"suld.b.u32 r0, [s]",
                                 "ld.acquire.gpu.u32 r1, [f]",
                                 "suld.b.u32 r2, [s]"})
            .permit("t1.r1 == 1 && t1.r2 == 0")
            .build();
    Machine machine(test);
    step(machine, 1); // warm t1's texture cache with s == 0
    step(machine, 0); // sust
    step(machine, 0); // fence.proxy.surface (drains to L2)
    step(machine, 0); // release f = 1
    step(machine, 1); // acquire reads f == 1
    step(machine, 1); // suld HITS the stale texture line
    drainEverything(machine);
    auto outcome = machine.outcome();
    EXPECT_EQ(outcome.reg("t1", "r1"), 1u);
    EXPECT_EQ(outcome.reg("t1", "r2"), 0u);
}

TEST(Machine, AcquireInvalidatesL1)
{
    // Without the acquire invalidation this would return the stale L1
    // line and violate the model's message-passing guarantee.
    auto test = LitmusBuilder("acq_inval")
                    .thread("t0", 0, 0, {"ld.global.u32 r0, [x]",
                                         "ld.acquire.gpu.u32 r1, [f]",
                                         "ld.global.u32 r2, [x]"})
                    .thread("t1", 1, 0, {"st.global.u32 [x], 42",
                                         "st.release.gpu.u32 [f], 1"})
                    .permit("t0.r0 == 0")
                    .build();
    Machine machine(test);
    step(machine, 0); // warm t0's L1 with x == 0
    step(machine, 1); // st x (queued on t1's SM)
    step(machine, 1); // release drains, f = 1 at L2
    step(machine, 0); // acquire reads 1, invalidates L1
    step(machine, 0); // ld x must miss and read 42
    drainEverything(machine);
    auto outcome = machine.outcome();
    EXPECT_EQ(outcome.reg("t0", "r1"), 1u);
    EXPECT_EQ(outcome.reg("t0", "r2"), 42u);
}

TEST(Machine, SmPerCtaSharing)
{
    // Threads in the same CTA share one SM; different CTAs get their
    // own.
    auto test = LitmusBuilder("sms")
                    .thread("a", 0, 0, {"ld.global.u32 r1, [x]"})
                    .thread("b", 0, 0, {"ld.global.u32 r1, [x]"})
                    .thread("c", 1, 0, {"ld.global.u32 r1, [x]"})
                    .permit("a.r1 == 0")
                    .build();
    Machine machine(test);
    EXPECT_EQ(machine.smCount(), 2u);
}

TEST(Machine, OutcomeBeforeFinishPanics)
{
    Machine machine(fig4Test(false));
    EXPECT_THROW(machine.outcome(), PanicError);
}

TEST(Machine, FullyCoherentModeAlwaysFresh)
{
    // §4.2 ablation: with physical tagging + invalidation, Fig. 4 reads
    // 42 under every schedule, even warmed.
    const auto &test = litmus::testByName("fig4_warmed_stale_hit");
    Machine machine(test, CoherenceMode::FullyCoherent);
    while (!machine.finished())
        machine.execute(machine.actions().front());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 42u);
    EXPECT_GE(machine.stats().translations, 1u);
    EXPECT_GE(machine.stats().invalidatedLines, 1u);
}

TEST(Machine, FenceReuseModeFixesProxyRaceAtACost)
{
    // §4.3 ablation: a generic fence that also flushes/invalidates the
    // proxy paths fixes fig4_warmed, but charges fence invalidations.
    const auto &test = litmus::testByName("fig4_warmed_stale_hit");
    Machine machine(test, CoherenceMode::FenceReuse);
    while (!machine.finished())
        machine.execute(machine.actions().front());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 42u);
    EXPECT_GE(machine.stats().fenceInvalidations, 1u);
}

TEST(Machine, CtaFenceIsFreeUnderProxyButNotUnderFenceReuse)
{
    auto test = LitmusBuilder("cta_fence")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 1",
                                         "fence.acq_rel.cta",
                                         "ld.global.u32 r1, [x]"})
                    .permit("t0.r1 == 1")
                    .build();
    Machine proxy_machine(test, CoherenceMode::Proxy);
    while (!proxy_machine.finished())
        proxy_machine.execute(proxy_machine.actions().front());
    EXPECT_EQ(proxy_machine.stats().fenceDrains, 0u);

    Machine reuse_machine(test, CoherenceMode::FenceReuse);
    while (!reuse_machine.finished())
        reuse_machine.execute(reuse_machine.actions().front());
    EXPECT_GE(reuse_machine.stats().fenceDrains, 1u);
}

TEST(Machine, TraceRecordsActionsAndValues)
{
    auto test = LitmusBuilder("trace")
                    .alias("c", "g")
                    .thread("t0", 0, 0, {"st.global.u32 [g], 42",
                                         "ld.const.u32 r1, [c]"})
                    .permit("t0.r1 == 0")
                    .build();
    Machine machine(test);
    machine.enableTrace();
    step(machine, 0); // store
    step(machine, 0); // constant load (races ahead)
    drainEverything(machine);
    ASSERT_EQ(machine.trace().size(), 4u);
    EXPECT_NE(machine.trace()[0].find("st.global.u32 [g], 42"),
              std::string::npos);
    EXPECT_NE(machine.trace()[1].find("r1 = 0"), std::string::npos)
        << machine.trace()[1];
    EXPECT_NE(machine.trace()[2].find("drain [g] = 42"),
              std::string::npos)
        << machine.trace()[2];
    EXPECT_NE(machine.trace()[3].find("writeback [g] -> sysmem"),
              std::string::npos)
        << machine.trace()[3];
}

TEST(Machine, TraceDisabledByDefault)
{
    Machine machine(fig4Test(false));
    while (!machine.finished())
        machine.execute(machine.actions().front());
    EXPECT_TRUE(machine.trace().empty());
}

TEST(Machine, StatsAccumulate)
{
    Machine machine(fig4Test(false));
    while (!machine.finished())
        machine.execute(machine.actions().front());
    const auto &stats = machine.stats();
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_GT(stats.totalLatency, 0u);
}

} // namespace
