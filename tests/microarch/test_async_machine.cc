/**
 * @file
 * Deterministic machine tests for the asynchronous copy engine and
 * scoped proxy fences.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "microarch/machine.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::microarch;
using litmus::LitmusBuilder;

void
stepThread(Machine &machine, std::size_t t)
{
    for (const auto &a : machine.actions()) {
        if (a.kind == Action::Kind::ThreadStep && a.thread == t) {
            machine.execute(a);
            return;
        }
    }
    FAIL() << "thread " << t << " cannot step";
}

void
runNonThreadActions(Machine &machine)
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (const auto &a : machine.actions()) {
            if (a.kind != Action::Kind::ThreadStep) {
                machine.execute(a);
                progressed = true;
                break;
            }
        }
    }
}

void
runAll(Machine &machine)
{
    while (!machine.finished())
        machine.execute(machine.actions().front());
}

TEST(AsyncMachine, WaitBlocksUntilCopyCompletes)
{
    auto test = LitmusBuilder("wait")
                    .init("s", 7)
                    .thread("t0", 0, 0, {"cp.async.ca.u32 [d], [s]",
                                         "cp.async.wait_all",
                                         "ld.global.u32 r1, [d]"})
                    .permit("t0.r1 == 7")
                    .build();
    Machine machine(test);
    stepThread(machine, 0); // issue the copy
    // The wait is not offered while the copy engine is busy.
    for (const auto &a : machine.actions())
        EXPECT_NE(a.kind, Action::Kind::ThreadStep) << a.toString();
    runNonThreadActions(machine); // the copy lands
    stepThread(machine, 0);       // wait (now enabled)
    stepThread(machine, 0);       // load
    runNonThreadActions(machine);
    ASSERT_TRUE(machine.finished());
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 7u);
}

TEST(AsyncMachine, UnjoinedCopyCanLoseTheRace)
{
    auto test = LitmusBuilder("norace")
                    .init("s", 7)
                    .thread("t0", 0, 0, {"cp.async.ca.u32 [d], [s]",
                                         "ld.global.u32 r1, [d]"})
                    .permit("t0.r1 == 0")
                    .build();
    // Schedule the load before the copy performs: stale 0.
    Machine machine(test);
    stepThread(machine, 0); // issue
    stepThread(machine, 0); // load races ahead of the copy
    runNonThreadActions(machine);
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 0u);
    EXPECT_EQ(machine.outcome().mem("d"), 7u); // copy still landed
}

TEST(AsyncMachine, CopyEngineBypassesStoreQueue)
{
    // A queued generic store to the source is invisible to the engine.
    auto test = LitmusBuilder("stale_src")
                    .thread("t0", 0, 0, {"st.global.u32 [s], 7",
                                         "cp.async.ca.u32 [d], [s]",
                                         "cp.async.wait_all",
                                         "ld.global.u32 r1, [d]"})
                    .permit("t0.r1 == 0")
                    .build();
    Machine machine(test);
    stepThread(machine, 0); // st -> queue (not drained!)
    stepThread(machine, 0); // issue copy
    // Perform the copy before the store drains.
    for (const auto &a : machine.actions()) {
        if (a.kind == Action::Kind::AsyncCopy) {
            machine.execute(a);
            break;
        }
    }
    runAll(machine);
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 0u);
}

TEST(AsyncMachine, AsyncFenceOrdersGenericBeforeCopy)
{
    const auto &test = litmus::testByName("async_copy_fenced_source");
    for (int schedule = 0; schedule < 2; schedule++) {
        Machine machine(test);
        // Under any schedule the result must be 7: the fence drains the
        // store before the copy can be issued.
        if (schedule == 0) {
            runAll(machine);
        } else {
            while (!machine.finished())
                machine.execute(machine.actions().back());
        }
        EXPECT_EQ(machine.outcome().reg("t0", "r1"), 7u)
            << "schedule " << schedule;
    }
}

TEST(AsyncMachine, WaitInvalidatesStaleL1)
{
    // The destination was cached in L1 before the copy; the join must
    // drop it.
    auto test = LitmusBuilder("l1_stale")
                    .init("s", 7)
                    .thread("t0", 0, 0, {"ld.global.u32 r0, [d]",
                                         "cp.async.ca.u32 [d], [s]",
                                         "cp.async.wait_all",
                                         "ld.global.u32 r1, [d]"})
                    .permit("t0.r1 == 7")
                    .build();
    Machine machine(test);
    runAll(machine);
    EXPECT_EQ(machine.outcome().reg("t0", "r0"), 0u);
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 7u);
}

TEST(ScopedFenceMachine, GpuScopeReachesRemoteSm)
{
    // Warmed remote constant cache; the writer's gpu-scoped fence
    // invalidates it.
    auto test = LitmusBuilder("scoped")
                    .alias("c", "x")
                    .thread("t0", 0, 0,
                            {"st.global.u32 [x], 42",
                             "fence.proxy.constant.gpu",
                             "st.release.gpu.u32 [f], 1"})
                    .thread("t1", 1, 0, {"ld.const.u32 r0, [c]",
                                         "ld.acquire.gpu.u32 r1, [f]",
                                         "ld.const.u32 r2, [c]"})
                    .permit("t1.r1 == 0")
                    .build();
    Machine machine(test);
    stepThread(machine, 1); // warm t1's constant cache (0)
    stepThread(machine, 0); // st
    stepThread(machine, 0); // scoped fence: drains + remote invalidate
    stepThread(machine, 0); // release
    stepThread(machine, 1); // acquire (reads 1)
    stepThread(machine, 1); // constant load must miss and see 42
    runNonThreadActions(machine);
    auto outcome = machine.outcome();
    EXPECT_EQ(outcome.reg("t1", "r1"), 1u);
    EXPECT_EQ(outcome.reg("t1", "r2"), 42u);
}

TEST(ScopedFenceMachine, CtaScopeDoesNot)
{
    auto test = LitmusBuilder("unscoped")
                    .alias("c", "x")
                    .thread("t0", 0, 0, {"st.global.u32 [x], 42",
                                         "fence.proxy.constant",
                                         "st.release.gpu.u32 [f], 1"})
                    .thread("t1", 1, 0, {"ld.const.u32 r0, [c]",
                                         "ld.acquire.gpu.u32 r1, [f]",
                                         "ld.const.u32 r2, [c]"})
                    .permit("t1.r1 == 0")
                    .build();
    Machine machine(test);
    stepThread(machine, 1);
    stepThread(machine, 0);
    stepThread(machine, 0);
    stepThread(machine, 0);
    stepThread(machine, 1);
    stepThread(machine, 1); // stale hit in t1's constant cache
    runNonThreadActions(machine);
    auto outcome = machine.outcome();
    EXPECT_EQ(outcome.reg("t1", "r1"), 1u);
    EXPECT_EQ(outcome.reg("t1", "r2"), 0u);
}

TEST(AsyncMachine, FullyCoherentModeIsSynchronous)
{
    const auto &test = litmus::testByName("async_copy_stale_source");
    Machine machine(test, CoherenceMode::FullyCoherent);
    runAll(machine);
    EXPECT_EQ(machine.outcome().reg("t0", "r1"), 7u);
}

} // namespace
