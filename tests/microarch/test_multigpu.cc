/**
 * @file
 * Multi-GPU hierarchy tests: per-GPU L2 caches over system memory make
 * the gpu- vs sys-scope distinction architecturally visible.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "litmus/test.hh"
#include "microarch/explore.hh"
#include "microarch/machine.hh"
#include "microarch/simulator.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::microarch;
using litmus::LitmusBuilder;

TEST(MultiGpu, GpuScopeStalenessIsObservable)
{
    // mp_gpu_scope_cross_gpu: the gpu-scope release only reaches the
    // local L2; a reader on another GPU can see the flag through a
    // sysmem writeback yet still read the stale payload.
    const auto &test = litmus::testByName("mp_gpu_scope_cross_gpu");
    auto result = exploreAllSchedules(test);
    bool stale_seen = false;
    for (const auto &outcome : result.outcomes) {
        if (outcome.reg("t1", "r1") == 1 && outcome.reg("t1", "r2") == 0)
            stale_seen = true;
    }
    EXPECT_TRUE(stale_seen)
        << "expected the cross-GPU stale read to be reachable";
}

TEST(MultiGpu, SysScopeRestoresThePublication)
{
    const auto &test = litmus::testByName("mp_sys_scope_cross_gpu");
    auto result = exploreAllSchedules(test);
    for (const auto &outcome : result.outcomes) {
        EXPECT_FALSE(outcome.reg("t1", "r1") == 1 &&
                     outcome.reg("t1", "r2") == 0)
            << outcome.toString();
    }
}

TEST(MultiGpu, SysAtomicsSerializeAcrossGpus)
{
    const auto &test = litmus::testByName("atom_add_sys_cross_gpu");
    auto result = exploreAllSchedules(test);
    for (const auto &outcome : result.outcomes) {
        EXPECT_FALSE(outcome.reg("t0", "r1") == 0 &&
                     outcome.reg("t1", "r2") == 0)
            << outcome.toString();
        EXPECT_EQ(outcome.mem("x"), 2u) << outcome.toString();
    }
}

TEST(MultiGpu, GpuAtomicsRaceAcrossGpus)
{
    const auto &test = litmus::testByName("atom_add_gpu_cross_gpu");
    auto result = exploreAllSchedules(test);
    bool both_zero = false;
    for (const auto &outcome : result.outcomes) {
        if (outcome.reg("t0", "r1") == 0 && outcome.reg("t1", "r2") == 0)
            both_zero = true;
    }
    EXPECT_TRUE(both_zero)
        << "gpu-scope RMWs on different GPUs should not serialize";
}

TEST(MultiGpu, FinalMemoryComesFromSysmem)
{
    // Two GPUs write the same location; the writeback order decides
    // the final value, and both orders are reachable.
    auto test = LitmusBuilder("wb_race")
                    .thread("t0", 0, 0, {"st.relaxed.gpu.u32 [x], 1"})
                    .thread("t1", 1, 1, {"st.relaxed.gpu.u32 [x], 2"})
                    .permit("[x] == 1")
                    .permit("[x] == 2")
                    .build();
    auto result = exploreAllSchedules(test);
    std::set<std::uint64_t> finals;
    for (const auto &outcome : result.outcomes)
        finals.insert(outcome.mem("x"));
    EXPECT_EQ(finals, (std::set<std::uint64_t>{1, 2}));
}

TEST(MultiGpu, ScFencesAtGpuScopeDoNotCrossGpus)
{
    // sb_fence_sc_scope_mismatch: the stale 0/0 outcome is reachable
    // because gpu-scope sc fences do not write back to sysmem.
    const auto &test =
        litmus::testByName("sb_fence_sc_scope_mismatch");
    auto result = exploreAllSchedules(test);
    bool both_zero = false;
    for (const auto &outcome : result.outcomes) {
        if (outcome.reg("t0", "r1") == 0 && outcome.reg("t1", "r2") == 0)
            both_zero = true;
    }
    EXPECT_TRUE(both_zero);
}

TEST(MultiGpu, SysScFencesForbidStoreBuffering)
{
    auto test = LitmusBuilder("sb_sys")
                    .thread("t0", 0, 0, {"st.relaxed.sys.u32 [x], 1",
                                         "fence.sc.sys",
                                         "ld.relaxed.sys.u32 r1, [y]"})
                    .thread("t1", 1, 1, {"st.relaxed.sys.u32 [y], 1",
                                         "fence.sc.sys",
                                         "ld.relaxed.sys.u32 r2, [x]"})
                    .forbid("t0.r1 == 0 && t1.r2 == 0")
                    .build();
    auto result = exploreAllSchedules(test);
    for (const auto &outcome : result.outcomes) {
        EXPECT_FALSE(outcome.reg("t0", "r1") == 0 &&
                     outcome.reg("t1", "r2") == 0)
            << outcome.toString();
    }
}

} // namespace
