/**
 * @file
 * Unit tests for the cache and store-queue building blocks.
 */

#include <gtest/gtest.h>

#include "microarch/cache.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy::microarch;
using mixedproxy::PanicError;

TEST(Cache, MissThenFillThenHit)
{
    Cache c("l1");
    EXPECT_FALSE(c.lookup(3).has_value());
    c.fill(3, 42, 7, false);
    auto line = c.lookup(3);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->value, 42u);
    EXPECT_EQ(line->location, 7);
    EXPECT_FALSE(line->dirty);
    EXPECT_EQ(c.lineCount(), 1u);
}

TEST(Cache, FillOverwrites)
{
    Cache c("l1");
    c.fill(3, 1, 7, false);
    c.fill(3, 2, 7, true);
    auto line = c.lookup(3);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->value, 2u);
    EXPECT_TRUE(line->dirty);
    EXPECT_EQ(c.lineCount(), 1u);
}

TEST(Cache, InvalidateAll)
{
    Cache c("tex");
    c.fill(1, 10, 0, false);
    c.fill(2, 20, 1, false);
    EXPECT_EQ(c.invalidateAll(), 2u);
    EXPECT_EQ(c.lineCount(), 0u);
    EXPECT_FALSE(c.lookup(1).has_value());
    EXPECT_EQ(c.invalidateAll(), 0u);
}

TEST(Cache, InvalidateLocationDropsOnlyAliases)
{
    Cache c("l1");
    // Two virtual tags aliasing location 5, one mapping elsewhere.
    c.fill(1, 10, 5, false);
    c.fill(2, 20, 5, false);
    c.fill(3, 30, 6, false);
    EXPECT_EQ(c.invalidateLocation(5), 2u);
    EXPECT_FALSE(c.lookup(1).has_value());
    EXPECT_FALSE(c.lookup(2).has_value());
    EXPECT_TRUE(c.lookup(3).has_value());
}

TEST(Cache, MarkClean)
{
    Cache c("l1");
    c.fill(1, 10, 0, true);
    c.markClean(1);
    EXPECT_FALSE(c.lookup(1)->dirty);
    c.markClean(99); // no-op on absent line
}

TEST(StoreQueue, FifoPerTag)
{
    StoreQueue q;
    q.push(1, 0, 10);
    q.push(1, 0, 11);
    q.push(2, 1, 20);
    EXPECT_EQ(q.size(), 3u);
    auto tags = q.drainableTags();
    EXPECT_EQ(tags.size(), 2u);
    // Oldest-per-tag ordering.
    EXPECT_EQ(q.drainTag(1).value, 10u);
    EXPECT_EQ(q.drainTag(1).value, 11u);
    EXPECT_EQ(q.drainTag(2).value, 20u);
    EXPECT_TRUE(q.empty());
}

TEST(StoreQueue, DrainMissingTagPanics)
{
    StoreQueue q;
    EXPECT_THROW(q.drainTag(1), PanicError);
}

TEST(StoreQueue, DrainAllIsOldestFirst)
{
    StoreQueue q;
    q.push(2, 1, 20);
    q.push(1, 0, 10);
    q.push(2, 1, 21);
    auto all = q.drainAll();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].value, 20u);
    EXPECT_EQ(all[1].value, 10u);
    EXPECT_EQ(all[2].value, 21u);
    EXPECT_TRUE(q.empty());
}

TEST(StoreQueue, DrainAllForTag)
{
    StoreQueue q;
    q.push(1, 0, 10);
    q.push(2, 1, 20);
    q.push(1, 0, 11);
    auto drained = q.drainAllForTag(1);
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].value, 10u);
    EXPECT_EQ(drained[1].value, 11u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(StoreQueue, ForwardReturnsYoungest)
{
    StoreQueue q;
    EXPECT_FALSE(q.forward(1).has_value());
    q.push(1, 0, 10);
    q.push(1, 0, 11);
    q.push(2, 1, 20);
    auto fwd = q.forward(1);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(fwd->value, 11u);
}

} // namespace
