/**
 * @file
 * Exhaustive schedule exploration: exact operational outcome sets,
 * checked against the axiomatic model and the SC reference.
 */

#include <gtest/gtest.h>

#include "litmus/registry.hh"
#include "microarch/explore.hh"
#include "microarch/simulator.hh"
#include "model/checker.hh"
#include "relation/error.hh"
#include "synth/sc_reference.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::microarch;

TEST(Explore, Fig4ExactOutcomeSet)
{
    const auto &test = litmus::testByName("fig4_const_alias_nofence");
    auto result = exploreAllSchedules(test);
    // Exactly the stale and fresh reads, nothing else.
    ASSERT_EQ(result.outcomes.size(), 2u);
    for (const auto &outcome : result.outcomes) {
        EXPECT_TRUE(outcome.reg("t0", "r1") == 0 ||
                    outcome.reg("t0", "r1") == 42);
        EXPECT_EQ(outcome.mem("global_ptr"), 42u);
    }
    EXPECT_GT(result.schedules, 1u);
}

TEST(Explore, ProxyFenceCollapsesToOneOutcome)
{
    const auto &test =
        litmus::testByName("fig4_const_alias_proxy_fence");
    auto result = exploreAllSchedules(test);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_EQ(result.outcomes.begin()->reg("t0", "r1"), 42u);
}

TEST(Explore, GuardTrips)
{
    const auto &test = litmus::testByName("fig2_iriw_weak");
    EXPECT_THROW(exploreAllSchedules(test, CoherenceMode::Proxy, 10),
                 FatalError);
}

// Exact operational soundness: on small tests, the machine's entire
// outcome set is inside the model's allowed set — no sampling gap.
class ExactSoundness : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ExactSoundness, ExactOutcomesSubsetOfModel)
{
    const auto &test = litmus::testByName(GetParam());
    model::CheckOptions opts;
    opts.collectWitnesses = false;
    auto allowed = model::Checker(opts).check(test).outcomes;
    auto result = exploreAllSchedules(test);
    for (const auto &outcome : result.outcomes) {
        EXPECT_TRUE(allowed.count(outcome))
            << test.name()
            << ": machine outcome not allowed: " << outcome.toString();
    }
}

// The same sweep also cross-validates three independent components:
// the fully coherent machine explored exhaustively must produce
// exactly the SC reference executor's outcome set.
TEST_P(ExactSoundness, CoherentMachineEqualsScReference)
{
    const auto &test = litmus::testByName(GetParam());
    auto coherent =
        exploreAllSchedules(test, CoherenceMode::FullyCoherent);
    auto sc = synth::scOutcomes(test);
    EXPECT_EQ(coherent.outcomes, sc) << test.name();
}

namespace {

/** Small tests only: exploration is exponential in action count. */
std::vector<std::string>
smallTestNames()
{
    std::vector<std::string> out;
    for (const auto &test : litmus::allTests()) {
        if (test.instructionCount() <= 5 &&
            test.threads().size() <= 2) {
            out.push_back(test.name());
        }
    }
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    SmallRegistry, ExactSoundness,
    ::testing::ValuesIn(smallTestNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Explore, RandomSamplingIsSubsetOfExhaustive)
{
    const auto &test = litmus::testByName("fig8c_two_thread_constant");
    auto exhaustive = exploreAllSchedules(test);
    microarch::SimOptions opts;
    opts.iterations = 300;
    auto sampled = microarch::Simulator(opts).run(test);
    for (const auto &[outcome, count] : sampled.histogram) {
        EXPECT_TRUE(exhaustive.outcomes.count(outcome))
            << outcome.toString();
    }
}

} // namespace

namespace {

using mixedproxy::microarch::exploreAllSchedules;

TEST(Coverage, SamplingConvergesToExhaustiveSet)
{
    const auto &test = mixedproxy::litmus::testByName(
        "fig4_const_alias_nofence");
    auto exact = exploreAllSchedules(test).outcomes;
    mixedproxy::microarch::SimOptions opts;
    opts.iterations = 500;
    auto sampled = mixedproxy::microarch::Simulator(opts).run(test);
    EXPECT_EQ(sampled.coverageOf(exact), 1.0);
    EXPECT_EQ(sampled.coverageOf({}), 1.0);
}

TEST(Coverage, PartialCoverageIsFractional)
{
    const auto &test = mixedproxy::litmus::testByName(
        "fig4_const_alias_nofence");
    auto exact = exploreAllSchedules(test).outcomes;
    ASSERT_EQ(exact.size(), 2u);
    mixedproxy::microarch::SimOptions opts;
    opts.iterations = 1; // one schedule can only see one outcome
    auto sampled = mixedproxy::microarch::Simulator(opts).run(test);
    EXPECT_EQ(sampled.coverageOf(exact), 0.5);
}

} // namespace
