/**
 * @file
 * Tests for the NVLitmus front-end: argument parsing, report content,
 * exit codes, and file input.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "nvlitmus/driver.hh"
#include "relation/error.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::nvlitmus;

int
run(const std::vector<std::string> &args, std::string *out_text = nullptr,
    std::string *err_text = nullptr)
{
    std::ostringstream out;
    std::ostringstream err;
    int code = runCli(args, out, err);
    if (out_text)
        *out_text = out.str();
    if (err_text)
        *err_text = err.str();
    return code;
}

TEST(ParseArgs, Defaults)
{
    auto opts = parseArgs({"foo.litmus"});
    EXPECT_EQ(opts.inputs.size(), 1u);
    EXPECT_EQ(opts.mode, model::ProxyMode::Ptx75);
    EXPECT_FALSE(opts.simulate);
    EXPECT_FALSE(opts.showWitnesses);
}

TEST(ParseArgs, AllFlags)
{
    auto opts = parseArgs({"--model", "ptx60", "--compare", "--witness",
                           "--simulate=500", "--sim-mode", "coherent",
                           "a", "b"});
    EXPECT_EQ(opts.mode, model::ProxyMode::Ptx60);
    EXPECT_TRUE(opts.compareModels);
    EXPECT_TRUE(opts.showWitnesses);
    EXPECT_TRUE(opts.simulate);
    EXPECT_EQ(opts.simIterations, 500u);
    EXPECT_EQ(opts.simMode, microarch::CoherenceMode::FullyCoherent);
    EXPECT_EQ(opts.inputs.size(), 2u);
}

TEST(ParseArgs, EqualsSyntax)
{
    auto opts = parseArgs({"--model=ptx60", "--sim-mode=fence-reuse"});
    EXPECT_EQ(opts.mode, model::ProxyMode::Ptx60);
    EXPECT_EQ(opts.simMode, microarch::CoherenceMode::FenceReuse);
}

TEST(ParseArgs, Invalid)
{
    EXPECT_THROW(parseArgs({"--model", "ptx99"}), FatalError);
    EXPECT_THROW(parseArgs({"--model"}), FatalError);
    EXPECT_THROW(parseArgs({"--bogus"}), FatalError);
    EXPECT_THROW(parseArgs({"--simulate=abc"}), FatalError);
    EXPECT_THROW(parseArgs({"--sim-mode", "warp"}), FatalError);
}

TEST(ParseArgs, FlagsMatchExactlyNotByPrefix)
{
    // "--modelx ptx75" once parsed as "--model ptx75" (the matcher
    // compared prefixes and then consumed the next argument); any
    // extended spelling must be an error now.
    EXPECT_THROW(parseArgs({"--modelx", "ptx75"}), FatalError);
    EXPECT_THROW(parseArgs({"--simulatex"}), FatalError);
    EXPECT_THROW(parseArgs({"--lintonly"}), FatalError);
    EXPECT_THROW(parseArgs({"--timingx"}), FatalError);
    // Single-dash unknowns are usage errors, not input files...
    EXPECT_THROW(parseArgs({"-x"}), FatalError);
    // ...but a bare "-" still means stdin.
    auto opts = parseArgs({"-"});
    ASSERT_EQ(opts.inputs.size(), 1u);
    EXPECT_EQ(opts.inputs[0], "-");
}

TEST(ParseArgs, JobsFlag)
{
    EXPECT_EQ(parseArgs({"x"}).jobs, 1u);
    EXPECT_EQ(parseArgs({"--jobs", "4", "x"}).jobs, 4u);
    EXPECT_EQ(parseArgs({"--jobs=2", "x"}).jobs, 2u);
    // Invalid values are usage errors, consistent with the strict flag
    // parsing: zero, non-numeric, trailing junk, empty, missing.
    EXPECT_THROW(parseArgs({"--jobs", "0"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs=0"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs", "abc"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs", "4x"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs", "-2"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs="}), FatalError);
    EXPECT_THROW(parseArgs({"--jobs"}), FatalError);
    EXPECT_THROW(parseArgs({"--jobsx", "4"}), FatalError);
}

TEST(Cli, BadJobsIsUsageError)
{
    std::string err;
    EXPECT_EQ(run({"--jobs", "0", "fig9_message_passing"}, nullptr,
                  &err),
              2);
    EXPECT_NE(err.find("--jobs"), std::string::npos);
    EXPECT_EQ(run({"--jobs=many", "fig9_message_passing"}, nullptr,
                  &err),
              2);
}

TEST(Cli, HelpMentionsJobs)
{
    std::string out;
    EXPECT_EQ(run({"--help"}, &out), 0);
    EXPECT_NE(out.find("--jobs"), std::string::npos);
}

TEST(ParseArgs, ObservabilityFlags)
{
    auto opts = parseArgs({"--timing", "--trace-out", "t.json",
                           "--stats-json=s.json", "fig2_iriw_weak"});
    EXPECT_TRUE(opts.timing);
    EXPECT_EQ(opts.traceOut, "t.json");
    EXPECT_EQ(opts.statsJsonOut, "s.json");
    EXPECT_THROW(parseArgs({"--trace-out"}), FatalError);
    EXPECT_THROW(parseArgs({"--stats-json"}), FatalError);
}

TEST(ParseArgs, ProfileEnumFlag)
{
    EXPECT_EQ(parseArgs({"x"}).profileEnum, 0u);
    // The bare flag samples every candidate; =N sets the period.
    EXPECT_EQ(parseArgs({"--profile-enum", "x"}).profileEnum, 1u);
    EXPECT_EQ(parseArgs({"--profile-enum=8", "x"}).profileEnum, 8u);
    EXPECT_THROW(parseArgs({"--profile-enum=0"}), FatalError);
    EXPECT_THROW(parseArgs({"--profile-enum="}), FatalError);
    EXPECT_THROW(parseArgs({"--profile-enum=abc"}), FatalError);
    EXPECT_THROW(parseArgs({"--profile-enum=4x"}), FatalError);
    EXPECT_THROW(parseArgs({"--profile-enumx"}), FatalError);
}

TEST(ParseArgs, EnumCoreFlags)
{
    EXPECT_EQ(parseArgs({"x"}).enumCore, model::EnumCore::Incremental);
    EXPECT_FALSE(parseArgs({"x"}).enumDiff);
    EXPECT_EQ(parseArgs({"--enum-core=legacy", "x"}).enumCore,
              model::EnumCore::Legacy);
    EXPECT_EQ(parseArgs({"--enum-core", "incremental", "x"}).enumCore,
              model::EnumCore::Incremental);
    EXPECT_TRUE(parseArgs({"--enum-diff"}).enumDiff);
    EXPECT_THROW(parseArgs({"--enum-core=bogus"}), FatalError);
    EXPECT_THROW(parseArgs({"--enum-core"}), FatalError);
    EXPECT_THROW(parseArgs({"--enum-diffx"}), FatalError);
}

TEST(Cli, EnumCoresProduceIdenticalReports)
{
    // The legacy core is a differential oracle: byte-identical stdout
    // on the same input, whatever the outcome set looks like.
    std::string incremental, legacy;
    ASSERT_EQ(run({"fig9_message_passing"}, &incremental), 0);
    ASSERT_EQ(
        run({"--enum-core=legacy", "fig9_message_passing"}, &legacy),
        0);
    EXPECT_EQ(incremental, legacy);
}

TEST(Cli, EnumDiffReportsZeroDivergences)
{
    std::string out;
    ASSERT_EQ(run({"--enum-diff", "fig9_message_passing",
                   "fig8a_alias_fence"},
                  &out),
              0);
    EXPECT_NE(out.find("0 divergences"), std::string::npos);
    EXPECT_NE(out.find("ok    fig9_message_passing"),
              std::string::npos);
}

TEST(Cli, HelpMentionsEnumCoreFlags)
{
    std::string out;
    ASSERT_EQ(run({"--help"}, &out), 0);
    EXPECT_NE(out.find("--enum-core"), std::string::npos);
    EXPECT_NE(out.find("--enum-diff"), std::string::npos);
}

TEST(ParseArgs, MetricsOutAndLogJsonFlags)
{
    auto opts = parseArgs({"--metrics-out", "m.prom", "x"});
    EXPECT_EQ(opts.metricsOut, "m.prom");
    opts = parseArgs({"--metrics-out=m2.prom", "x"});
    EXPECT_EQ(opts.metricsOut, "m2.prom");
    EXPECT_THROW(parseArgs({"--metrics-out"}), FatalError);

    opts = parseArgs({"--serve", "--log-json=log.jsonl"});
    EXPECT_EQ(opts.logJsonOut, "log.jsonl");
    EXPECT_THROW(parseArgs({"--log-json"}), FatalError);
}

TEST(Cli, LogJsonWithoutServeIsUsageError)
{
    std::string err;
    EXPECT_EQ(run({"--log-json=log.jsonl", "fig9_message_passing"},
                  nullptr, &err),
              2);
    EXPECT_NE(err.find("--log-json requires --serve"),
              std::string::npos);
}

TEST(Cli, HelpMentionsObservabilityFlags)
{
    std::string out;
    EXPECT_EQ(run({"--help"}, &out), 0);
    for (const char *flag : {"--profile-enum", "--metrics-out",
                             "--log-json", "--timing", "--stats-json"}) {
        EXPECT_NE(out.find(flag), std::string::npos) << flag;
    }
}

TEST(Cli, HelpAndList)
{
    std::string out;
    EXPECT_EQ(run({"--help"}, &out), 0);
    EXPECT_NE(out.find("usage"), std::string::npos);

    EXPECT_EQ(run({"--list"}, &out), 0);
    EXPECT_NE(out.find("fig8a_alias_fence"), std::string::npos);
    EXPECT_NE(out.find("fig9_message_passing"), std::string::npos);
}

TEST(Cli, NoInputsIsUsageError)
{
    std::string err;
    EXPECT_EQ(run({}, nullptr, &err), 2);
    EXPECT_NE(err.find("no inputs"), std::string::npos);
}

TEST(Cli, UnknownFlagIsUsageError)
{
    std::string err;
    EXPECT_EQ(run({"--frobnicate"}, nullptr, &err), 2);
}

TEST(Cli, BuiltinTestByName)
{
    std::string out;
    EXPECT_EQ(run({"fig8a_alias_fence"}, &out), 0);
    EXPECT_NE(out.find("PASS"), std::string::npos);
    EXPECT_NE(out.find("allowed: t0.r3=42"), std::string::npos);
}

TEST(Cli, MissingFileIsError)
{
    std::string err;
    EXPECT_EQ(run({"/nonexistent/x.litmus"}, nullptr, &err), 2);
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Cli, FileInput)
{
    const char *path = "nvlitmus_test_tmp.litmus";
    {
        std::ofstream file(path);
        file << "name: from_file\n"
                "thread t0:\n"
                "  st.global.u32 [x], 1\n"
                "  ld.global.u32 r1, [x]\n"
                "require: t0.r1 == 1\n";
    }
    std::string out;
    EXPECT_EQ(run({path}, &out), 0);
    EXPECT_NE(out.find("from_file"), std::string::npos);
    std::remove(path);
}

TEST(Cli, FailingAssertionExitsOne)
{
    const char *path = "nvlitmus_fail_tmp.litmus";
    {
        std::ofstream file(path);
        file << "name: failing\n"
                "thread t0:\n"
                "  ld.global.u32 r1, [x]\n"
                "forbid: t0.r1 == 0\n";
    }
    std::string out;
    EXPECT_EQ(run({path}, &out), 1);
    EXPECT_NE(out.find("FAIL"), std::string::npos);
    std::remove(path);
}

TEST(Cli, CompareShowsProxyDelta)
{
    std::string out;
    EXPECT_EQ(run({"--compare", "fig4_const_alias_nofence"}, &out), 0);
    EXPECT_NE(out.find("only ptx75"), std::string::npos);
}

TEST(Cli, CompareIdenticalOnProxyFreeTest)
{
    std::string out;
    EXPECT_EQ(run({"--compare", "sb_relaxed"}, &out), 0);
    EXPECT_NE(out.find("identical outcome sets"), std::string::npos);
}

TEST(Cli, WitnessOutput)
{
    std::string out;
    EXPECT_EQ(run({"--witness", "fig8a_alias_fence"}, &out), 0);
    EXPECT_NE(out.find("witness for"), std::string::npos);
    EXPECT_NE(out.find("rf"), std::string::npos);
}

TEST(Cli, DotOutput)
{
    std::string out;
    EXPECT_EQ(run({"--dot", "fig9_message_passing"}, &out), 0);
    EXPECT_NE(out.find("digraph"), std::string::npos);
    EXPECT_NE(out.find("label=\"rf\""), std::string::npos);
    EXPECT_NE(out.find("subgraph cluster_"), std::string::npos);
    // Synchronized outcome carries an sw edge.
    EXPECT_NE(out.find("label=\"sw\""), std::string::npos);
}

TEST(Cli, SimulateCrossChecks)
{
    std::string out;
    EXPECT_EQ(run({"--simulate=200", "fig4_const_alias_nofence"}, &out),
              0);
    EXPECT_NE(out.find("schedules"), std::string::npos);
    EXPECT_EQ(out.find("WARNING"), std::string::npos) << out;
}

TEST(Cli, AllRunsEveryBuiltin)
{
    std::string out;
    EXPECT_EQ(run({"--all"}, &out), 0);
    EXPECT_NE(out.find("PASS  fig8a_alias_fence"), std::string::npos);
    EXPECT_EQ(out.find("FAIL"), std::string::npos);
}

TEST(ParseArgs, SynthFlag)
{
    EXPECT_EQ(parseArgs({"--synth=3"}).synthInstructions, 3u);
    EXPECT_THROW(parseArgs({"--synth"}), FatalError);
    EXPECT_THROW(parseArgs({"--synth=abc"}), FatalError);
    EXPECT_THROW(parseArgs({"--synth=0"}), FatalError);
    EXPECT_THROW(parseArgs({"--synth=9"}), FatalError);
}

TEST(Cli, SynthReportsProxySensitiveTests)
{
    std::string out;
    EXPECT_EQ(run({"--synth=2"}, &out), 0);
    EXPECT_NE(out.find("proxy-sensitive"), std::string::npos);
    EXPECT_NE(out.find("ld.const"), std::string::npos) << out;
}

TEST(Cli, ShrinkMinimizesInput)
{
    std::string out;
    EXPECT_EQ(run({"--shrink", "t0.r1 == 0 && [global_ptr] == 42",
                   "fig4_const_alias_generic_fence"},
                  &out),
              0);
    EXPECT_NE(out.find("shrunk from 3 to 2 instructions"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("ld.const"), std::string::npos);
    EXPECT_EQ(out.find("fence.acq_rel"), std::string::npos) << out;
}

TEST(Cli, ShrinkRejectsUnsatisfiableCondition)
{
    std::string err;
    EXPECT_EQ(run({"--shrink", "t0.r1 == 99", "fig8a_alias_fence"},
                  nullptr, &err),
              2);
    EXPECT_NE(err.find("does not hold"), std::string::npos);
}

TEST(Cli, SynthOutWritesSuite)
{
    std::string out;
    EXPECT_EQ(run({"--synth=2", "--synth-out=cli_suite_tmp"}, &out), 0);
    EXPECT_NE(out.find("wrote"), std::string::npos);
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator("cli_suite_tmp")) {
        (void)entry;
        files++;
    }
    EXPECT_GT(files, 0u);
    std::filesystem::remove_all("cli_suite_tmp");
}

TEST(ParseArgs, LintFlags)
{
    auto opts = parseArgs({"--lint", "a"});
    EXPECT_TRUE(opts.lint);
    EXPECT_FALSE(opts.lintOnly);
    opts = parseArgs({"--lint-only", "a"});
    EXPECT_TRUE(opts.lintOnly);
}

TEST(Cli, LintAppendsFindingsToReport)
{
    // The built-in Fig. 4 reproduction with only a generic fence is a
    // mixed-proxy race; --lint must surface it alongside the verdicts.
    std::string out;
    EXPECT_EQ(run({"--lint", "fig4_const_alias_generic_fence"}, &out),
              0);
    EXPECT_NE(out.find("outcome(s)"), std::string::npos) << out;
    EXPECT_NE(out.find("mixed-proxy-race"), std::string::npos) << out;
    EXPECT_NE(out.find("hint: insert fence.proxy.constant"),
              std::string::npos)
        << out;
}

TEST(Cli, LintOnlyExitCodes)
{
    // Racy input: findings, exit 1, and no exhaustive-checker output.
    std::string out;
    EXPECT_EQ(run({"--lint-only", "fig4_const_alias_nofence"}, &out), 1);
    EXPECT_NE(out.find("mixed-proxy-race"), std::string::npos) << out;
    EXPECT_EQ(out.find("outcomes"), std::string::npos) << out;

    // Properly fenced input: clean, exit 0.
    out.clear();
    EXPECT_EQ(run({"--lint-only", "fig4_const_alias_proxy_fence"}, &out),
              0);
    EXPECT_NE(out.find("0 error(s), 0 warning(s)"), std::string::npos)
        << out;
}

TEST(Cli, Ptx60ModeChangesVerdicts)
{
    // Under the proxy-oblivious model the Fig. 4 no-fence test's
    // "permit stale" assertion fails: PTX 6.0 cannot see the race.
    std::string out;
    EXPECT_EQ(run({"--model", "ptx60", "fig4_const_alias_nofence"},
                  &out),
              1);
    EXPECT_NE(out.find("FAIL"), std::string::npos);
}

} // namespace
