/**
 * @file
 * End-to-end determinism contract for the batch runtime: for any
 * --jobs N the driver's stdout, exit code, --stats-json aggregates,
 * and synth classification report are identical to the serial run.
 * Only wall-clock readings (timer millisecond fields, the synthesis
 * "in <seconds> s" banner) are allowed to differ, and the tests
 * normalize exactly those before comparing.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "nvlitmus/driver.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::nvlitmus;

struct RunResult {
    int code = 0;
    std::string out;
    std::string err;
};

RunResult
run(const std::vector<std::string> &args)
{
    std::ostringstream out;
    std::ostringstream err;
    RunResult r;
    r.code = runCli(args, out, err);
    r.out = out.str();
    r.err = err.str();
    return r;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Zero every "<name>_ms": <number> field: wall-clock readings are the
 *  one thing the determinism contract does not cover. */
std::string
zeroWallClock(const std::string &json)
{
    static const std::regex ms_field(
        "(\"[^\"]*_ms\": )[-+0-9.eE]+");
    return std::regex_replace(json, ms_field, "$010");
}

/** Normalize the synthesis banner's elapsed-seconds figure. */
std::string
zeroElapsedSeconds(const std::string &text)
{
    static const std::regex elapsed("in [0-9.]+ s");
    return std::regex_replace(text, elapsed, "in X s");
}

TEST(Determinism, AllTableIsByteIdenticalAcrossJobs)
{
    RunResult serial = run({"--all", "--jobs", "1"});
    RunResult parallel = run({"--all", "--jobs", "4"});
    EXPECT_EQ(serial.code, parallel.code);
    EXPECT_EQ(serial.out, parallel.out);
    EXPECT_EQ(serial.err, parallel.err);
}

TEST(Determinism, PerTestReportsAreByteIdenticalAcrossJobs)
{
    const std::vector<std::string> tests = {
        "fig9_message_passing", "fig8a_alias_fence",
        "fig10_fence_proxy_alias", "fig9_message_passing"};
    std::vector<std::string> serial_args = {"--jobs", "1"};
    std::vector<std::string> parallel_args = {"--jobs", "4"};
    serial_args.insert(serial_args.end(), tests.begin(), tests.end());
    parallel_args.insert(parallel_args.end(), tests.begin(),
                         tests.end());
    RunResult serial = run(serial_args);
    RunResult parallel = run(parallel_args);
    EXPECT_EQ(serial.code, parallel.code);
    EXPECT_EQ(serial.out, parallel.out);
    EXPECT_EQ(serial.err, parallel.err);
}

TEST(Determinism, StatsJsonIsJobsInvariantModuloWallClock)
{
    const auto dir = std::filesystem::temp_directory_path();
    const auto serial_path = dir / "mp_det_stats_j1.json";
    const auto parallel_path = dir / "mp_det_stats_j4.json";
    RunResult serial = run(
        {"--all", "--jobs", "1", "--stats-json", serial_path.string()});
    RunResult parallel = run({"--all", "--jobs", "4", "--stats-json",
                              parallel_path.string()});
    EXPECT_EQ(serial.code, parallel.code);
    EXPECT_EQ(serial.out, parallel.out);

    std::string serial_json = readFile(serial_path);
    std::string parallel_json = readFile(parallel_path);
    std::filesystem::remove(serial_path);
    std::filesystem::remove(parallel_path);
    ASSERT_FALSE(serial_json.empty());
    ASSERT_FALSE(parallel_json.empty());
    // Counters, gauges, timer names, and timer counts must all agree;
    // only the millisecond readings are wall-clock.
    EXPECT_EQ(zeroWallClock(serial_json), zeroWallClock(parallel_json));
}

TEST(Determinism, SynthReportIsJobsInvariantModuloElapsed)
{
    RunResult serial = run({"--synth=2", "--jobs", "1"});
    RunResult parallel = run({"--synth=2", "--jobs", "4"});
    EXPECT_EQ(serial.code, parallel.code);
    EXPECT_EQ(zeroElapsedSeconds(serial.out),
              zeroElapsedSeconds(parallel.out));
    EXPECT_EQ(serial.err, parallel.err);
}

TEST(Determinism, LintBatchIsByteIdenticalAcrossJobs)
{
    // The lint path mixes clean and dirty built-in tests; per-test
    // diagnostics must come out in input order with the serial text.
    const std::vector<std::string> tests = {
        "fig8a_alias_fence", "fig9_message_passing",
        "fig10_fence_proxy_alias"};
    std::vector<std::string> serial_args = {"--lint-only", "--jobs",
                                            "1"};
    std::vector<std::string> parallel_args = {"--lint-only", "--jobs",
                                              "4"};
    serial_args.insert(serial_args.end(), tests.begin(), tests.end());
    parallel_args.insert(parallel_args.end(), tests.begin(),
                         tests.end());
    RunResult serial = run(serial_args);
    RunResult parallel = run(parallel_args);
    EXPECT_EQ(serial.code, parallel.code);
    EXPECT_EQ(serial.out, parallel.out);
    EXPECT_EQ(serial.err, parallel.err);
}

} // namespace
