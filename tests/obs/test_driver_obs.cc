/**
 * @file
 * End-to-end tests for the driver's observability flags: --stats-json
 * writes a parseable structured report with the documented metric
 * names, --trace-out writes loadable Chrome trace JSON, --timing
 * prints the per-phase table, and unwritable sinks are usage errors.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "json_check.hh"
#include "nvlitmus/driver.hh"
#include "obs/obs.hh"

namespace {

using namespace mixedproxy;
using namespace mixedproxy::nvlitmus;
using mixedproxy::testjson::JsonValue;
using mixedproxy::testjson::parseJson;

int
run(const std::vector<std::string> &args, std::string *out_text = nullptr,
    std::string *err_text = nullptr)
{
    std::ostringstream out;
    std::ostringstream err;
    int code = runCli(args, out, err);
    if (out_text)
        *out_text = out.str();
    if (err_text)
        *err_text = err.str();
    return code;
}

/** Unique temp path, removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &stem)
        : _path(std::filesystem::temp_directory_path() /
                ("mp_obs_test_" + stem))
    {
        std::filesystem::remove(_path);
    }

    ~TempFile() { std::filesystem::remove(_path); }

    const std::filesystem::path &path() const { return _path; }

    std::string contents() const
    {
        std::ifstream in(_path);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }

  private:
    std::filesystem::path _path;
};

TEST(DriverObs, StatsJsonHasDocumentedCheckerMetrics)
{
    TempFile stats("stats.json");
    std::string out;
    ASSERT_EQ(run({"--stats-json=" + stats.path().string(),
                   "fig9_message_passing"},
                  &out),
              0);
    ASSERT_TRUE(std::filesystem::exists(stats.path()));
    std::string error;
    auto doc = parseJson(stats.contents(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("schema").string, "mixedproxy.stats.v2");
    EXPECT_EQ(doc->at("meta").at("tool").string, "nvlitmus");
    EXPECT_EQ(doc->at("meta").at("model").string, "ptx75");
    // The stable checker metric names (docs/observability.md).
    const JsonValue &counters = doc->at("counters");
    for (const char *name :
         {"checker.rf_assignments", "checker.candidates",
          "checker.consistent"}) {
        EXPECT_TRUE(counters.has(name)) << "missing counter " << name;
        EXPECT_GT(counters.at(name).number, 0.0) << name;
    }
    // The layered derived-relation engine only counts *productive*
    // observation-fixpoint passes: zero here (no atomic reads in
    // fig9_message_passing), and always strictly below the number of
    // rf assignments.
    ASSERT_TRUE(counters.has("checker.fixpoint.iterations"));
    EXPECT_LT(counters.at("checker.fixpoint.iterations").number,
              counters.at("checker.rf_assignments").number);
    // The layer counters account the incremental core's delta work.
    for (const char *name :
         {"checker.layer.base_reuse", "checker.layer.rf_delta",
          "checker.layer.rf_prefix_reject",
          "checker.layer.co_prefix_reject"}) {
        EXPECT_TRUE(counters.has(name)) << "missing counter " << name;
    }
    EXPECT_GT(counters.at("checker.layer.base_reuse").number, 0.0);
    // Every rf assignment either hits or misses the single-proxy fast
    // path — the split must account for all of them.
    EXPECT_DOUBLE_EQ(counters.at("checker.fastpath.hits").number +
                         counters.at("checker.fastpath.misses").number,
                     counters.at("checker.rf_assignments").number);
    // Edge totals are collected when the obs session is attached.
    EXPECT_GT(counters.at("checker.edges.cause").number, 0.0);
    // Phase timers exist for the whole check and its inner phases.
    const JsonValue &timers = doc->at("timers");
    for (const char *name :
         {"parse", "check", "check.expand", "check.derived",
          "check.enumerate", "check.assertions"}) {
        ASSERT_TRUE(timers.has(name)) << "missing timer " << name;
        EXPECT_GE(timers.at(name).at("count").number, 1.0) << name;
    }
    // The report on stdout is unaffected by the sink.
    EXPECT_NE(out.find("fig9_message_passing"), std::string::npos);
}

TEST(DriverObs, TraceOutWritesChromeTraceJson)
{
    TempFile trace("trace.json");
    ASSERT_EQ(
        run({"--trace-out=" + trace.path().string(), "fig2_iriw_weak"}),
        0);
    std::string error;
    auto doc = parseJson(trace.contents(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto &events = doc->at("traceEvents").array;
    ASSERT_FALSE(events.empty());
    bool saw_check = false;
    for (const JsonValue &e : events) {
        EXPECT_EQ(e.at("ph").string, "X");
        EXPECT_GE(e.at("ts").number, 0.0);
        EXPECT_GE(e.at("dur").number, 0.0);
        if (e.at("name").string == "check")
            saw_check = true;
    }
    EXPECT_TRUE(saw_check);
}

TEST(DriverObs, TimingPrintsPhaseTableToStderr)
{
    std::string out;
    std::string err;
    ASSERT_EQ(run({"--timing", "fig9_message_passing"}, &out, &err), 0);
    EXPECT_NE(err.find("phase"), std::string::npos);
    EXPECT_NE(err.find("check"), std::string::npos);
    EXPECT_NE(err.find("counters:"), std::string::npos);
    EXPECT_NE(err.find("checker.candidates"), std::string::npos);
    // The table goes to stderr only; stdout keeps the report.
    EXPECT_EQ(out.find("counters:"), std::string::npos);
}

TEST(DriverObs, SimulationAndLintMetricsReachStatsJson)
{
    TempFile stats("sim_stats.json");
    ASSERT_EQ(run({"--stats-json=" + stats.path().string(),
                   "--simulate=50", "--lint", "fig9_message_passing"}),
              0);
    std::string error;
    auto doc = parseJson(stats.contents(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_GT(doc->at("counters").at("sim.schedules").number, 0.0);
    EXPECT_GT(doc->at("counters").at("analysis.runs").number, 0.0);
    EXPECT_TRUE(doc->at("timers").has("sim"));
    EXPECT_TRUE(doc->at("timers").has("lint"));
}

TEST(DriverObs, UnwritableSinkIsUsageError)
{
    std::string err;
    EXPECT_EQ(run({"--stats-json=/nonexistent_dir_mp/x.json",
                   "fig9_message_passing"},
                  nullptr, &err),
              2);
    EXPECT_NE(err.find("cannot write"), std::string::npos);
    EXPECT_EQ(
        run({"--trace-out=/nonexistent_dir_mp/x.json", "fig2_iriw_weak"},
            nullptr, &err),
        2);
}

TEST(DriverObs, StatsJsonCarriesEnumProfileAndBuild)
{
    TempFile stats("enum_stats.json");
    ASSERT_EQ(run({"--stats-json=" + stats.path().string(),
                   "fig4_const_alias_nofence"}),
              0);
    std::string error;
    auto doc = parseJson(stats.contents(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_FALSE(doc->at("build").at("git_sha").string.empty());
    const JsonValue &profile = doc->at("enum_profile");
    // The depth histogram covers every examined candidate.
    double depth_sum = 0.0;
    for (const auto &[bucket, value] :
         profile.at("depth_histogram").object) {
        (void)bucket;
        depth_sum += value.number;
    }
    EXPECT_DOUBLE_EQ(
        depth_sum, doc->at("counters").at("checker.candidates").number);
    // Candidate-level rejections account for candidates - consistent.
    double reject_sum = 0.0;
    for (const char *axiom : {"causality_b", "sc_per_location",
                              "atomicity", "fence_sc"}) {
        if (profile.at("rejections").has(axiom))
            reject_sum += profile.at("rejections").at(axiom).number;
    }
    EXPECT_DOUBLE_EQ(
        reject_sum,
        doc->at("counters").at("checker.candidates").number -
            doc->at("counters").at("checker.consistent").number);
    // Branching raw sums are present for presentation-time quotients.
    EXPECT_GT(profile.at("branching").at("rf.reads").number, 0.0);
    EXPECT_GT(profile.at("branching").at("rf.source_slots").number, 0.0);
}

TEST(DriverObs, ProfileEnumPrintsTableAndRecordsSamples)
{
    TempFile stats("profile_stats.json");
    std::string err;
    ASSERT_EQ(run({"--profile-enum",
                   "--stats-json=" + stats.path().string(),
                   "fig9_message_passing"},
                  nullptr, &err),
              0);
    EXPECT_NE(err.find("enumeration profile"), std::string::npos);
    EXPECT_NE(err.find("sampled wall clock"), std::string::npos);
    std::string error;
    auto doc = parseJson(stats.contents(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue &sampled = doc->at("enum_profile").at("sampled");
    // Period 1 samples every examined candidate.
    EXPECT_DOUBLE_EQ(
        sampled.at("candidates").number,
        doc->at("counters").at("checker.candidates").number);
    EXPECT_TRUE(sampled.has("co_build_ns"));
    EXPECT_TRUE(sampled.has("axiom.causality_b_ns"));
}

TEST(DriverObs, MetricsOutWritesPrometheusText)
{
    TempFile metrics("metrics.prom");
    ASSERT_EQ(run({"--metrics-out=" + metrics.path().string(),
                   "fig9_message_passing"}),
              0);
    std::string text = metrics.contents();
    EXPECT_NE(text.find("mixedproxy_build_info{"), std::string::npos);
    EXPECT_NE(text.find("tool=\"nvlitmus\""), std::string::npos);
    EXPECT_NE(text.find("mixedproxy_checker_candidates_total"),
              std::string::npos);
    EXPECT_NE(text.find("mixedproxy_check_seconds_count"),
              std::string::npos);

    std::string err;
    EXPECT_EQ(run({"--metrics-out=/nonexistent_dir_mp/x.prom",
                   "fig9_message_passing"},
                  nullptr, &err),
              2);
    EXPECT_NE(err.find("cannot write"), std::string::npos);
}

TEST(DriverObs, ProfilerCountersAreJobsInvariant)
{
    const std::vector<std::string> inputs = {
        "fig9_message_passing", "fig2_iriw_weak", "fig8a_alias_fence",
        "fig4_const_alias_nofence", "fig8b_constant_nofence"};
    auto countersFor = [&](const std::string &jobs) {
        TempFile stats("jobs" + jobs + "_stats.json");
        std::vector<std::string> args = {
            "--jobs=" + jobs, "--stats-json=" + stats.path().string()};
        args.insert(args.end(), inputs.begin(), inputs.end());
        EXPECT_EQ(run(args), 0);
        std::string error;
        auto doc = parseJson(stats.contents(), &error);
        EXPECT_TRUE(doc.has_value()) << error;
        // Deterministic counters only: sampled "*_ns" wall-clock
        // counters (absent here — no --profile-enum) would differ.
        std::map<std::string, double> flat;
        for (const auto &[name, value] : doc->at("counters").object) {
            if (name.find("_ns") == std::string::npos)
                flat["counters." + name] = value.number;
        }
        for (const auto &[section, members] :
             doc->at("enum_profile").object) {
            for (const auto &[name, value] : members.object) {
                if (name.find("_ns") == std::string::npos)
                    flat[section + "." + name] = value.number;
            }
        }
        return flat;
    };
    auto serial = countersFor("1");
    auto parallel = countersFor("4");
    EXPECT_EQ(serial, parallel);
    EXPECT_GT(serial.at("counters.checker.candidates"), 0.0);
    EXPECT_GT(serial.at("rejections.causality_b"), 0.0);
}

TEST(DriverObs, SessionIsDisabledAgainAfterRun)
{
    ASSERT_EQ(run({"--timing", "fig9_message_passing"}), 0);
    EXPECT_FALSE(obs::enabled());
    // A run without sinks must not enable instrumentation at all.
    obs::globalSession().metrics.clear();
    obs::globalSession().tracer.clear();
    ASSERT_EQ(run({"fig9_message_passing"}), 0);
    EXPECT_TRUE(obs::globalSession().metrics.empty());
    EXPECT_TRUE(obs::globalSession().tracer.empty());
}

} // namespace
