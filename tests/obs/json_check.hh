/**
 * @file
 * A minimal strict JSON parser for validating the hand-rolled emitters
 * in obs/report.cc. Parses the full JSON grammar (RFC 8259) into a
 * tree of JsonValue nodes; any syntax error yields nullopt plus a
 * position message. Test-only — the library itself stays
 * dependency-free and never parses JSON.
 */

#ifndef MIXEDPROXY_TESTS_OBS_JSON_CHECK_HH
#define MIXEDPROXY_TESTS_OBS_JSON_CHECK_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mixedproxy::testjson {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }

    /** Member access; a missing key yields a Null value. */
    const JsonValue &at(const std::string &key) const
    {
        static const JsonValue null_value;
        auto it = object.find(key);
        return it == object.end() ? null_value : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    std::optional<JsonValue> parse()
    {
        JsonValue value;
        skipWs();
        if (!parseValue(value))
            return std::nullopt;
        skipWs();
        if (_pos != _text.size()) {
            fail("trailing content");
            return std::nullopt;
        }
        return value;
    }

    const std::string &error() const { return _error; }

  private:
    void skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            _pos++;
    }

    bool fail(const std::string &what)
    {
        if (_error.empty())
            _error = what + " at offset " + std::to_string(_pos);
        return false;
    }

    bool literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (_text.compare(_pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        _pos += n;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        char c = _text[_pos];
        switch (c) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        _pos++; // '{'
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            _pos++;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':'");
            _pos++;
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            if (!out.object.emplace(key, std::move(value)).second)
                return fail("duplicate key \"" + key + "\"");
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                _pos++;
                continue;
            }
            if (_text[_pos] == '}') {
                _pos++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        _pos++; // '['
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            _pos++;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                _pos++;
                continue;
            }
            if (_text[_pos] == ']') {
                _pos++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseString(std::string &out)
    {
        _pos++; // '"'
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (c == '"') {
                _pos++;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character");
            if (c != '\\') {
                out.push_back(c);
                _pos++;
                continue;
            }
            _pos++;
            if (_pos >= _text.size())
                return fail("unterminated escape");
            char esc = _text[_pos];
            _pos++;
            switch (esc) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                if (_pos + 4 > _text.size())
                    return fail("truncated \\u escape");
                for (std::size_t i = 0; i < 4; i++) {
                    if (!std::isxdigit(static_cast<unsigned char>(
                            _text[_pos + i])))
                        return fail("bad \\u escape");
                }
                // Decoded only far enough for validation; the emitters
                // never produce non-ASCII escapes.
                out.push_back('?');
                _pos += 4;
                break;
            }
            default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            _pos++;
        if (_pos >= _text.size() ||
            !std::isdigit(static_cast<unsigned char>(_text[_pos])))
            return fail("expected a value");
        // No leading zeros (strict JSON).
        if (_text[_pos] == '0' && _pos + 1 < _text.size() &&
            std::isdigit(static_cast<unsigned char>(_text[_pos + 1])))
            return fail("leading zero");
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos])))
            _pos++;
        if (_pos < _text.size() && _text[_pos] == '.') {
            _pos++;
            if (_pos >= _text.size() ||
                !std::isdigit(static_cast<unsigned char>(_text[_pos])))
                return fail("digit required after '.'");
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos])))
                _pos++;
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            _pos++;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                _pos++;
            if (_pos >= _text.size() ||
                !std::isdigit(static_cast<unsigned char>(_text[_pos])))
                return fail("digit required in exponent");
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos])))
                _pos++;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(_text.substr(start, _pos - start).c_str(),
                                 nullptr);
        return true;
    }

    const std::string &_text;
    std::size_t _pos = 0;
    std::string _error;
};

/** Parse @p text; on failure returns nullopt and sets @p error. */
inline std::optional<JsonValue>
parseJson(const std::string &text, std::string *error = nullptr)
{
    JsonParser parser(text);
    auto value = parser.parse();
    if (!value && error)
        *error = parser.error();
    return value;
}

} // namespace mixedproxy::testjson

#endif // MIXEDPROXY_TESTS_OBS_JSON_CHECK_HH
