/**
 * @file
 * Unit tests for the metrics registry: counter/gauge semantics, timer
 * summaries, nearest-rank percentiles, and the sample-retention bound.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace {

using namespace mixedproxy::obs;

TEST(Metrics, CountersDefaultToZeroAndAccumulate)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.counter("checker.candidates"), 0u);
    reg.add("checker.candidates");
    reg.add("checker.candidates", 41);
    EXPECT_EQ(reg.counter("checker.candidates"), 42u);
    EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(Metrics, GaugesLastWriteWins)
{
    MetricsRegistry reg;
    EXPECT_DOUBLE_EQ(reg.gauge("sim.mean_latency_cycles"), 0.0);
    reg.set("sim.mean_latency_cycles", 12.5);
    reg.set("sim.mean_latency_cycles", 7.25);
    EXPECT_DOUBLE_EQ(reg.gauge("sim.mean_latency_cycles"), 7.25);
}

TEST(Metrics, TimerSummaryStreamingAggregates)
{
    MetricsRegistry reg;
    reg.record("check", 0.010);
    reg.record("check", 0.030);
    reg.record("check", 0.020);
    TimerSummary t = reg.timer("check");
    EXPECT_EQ(t.count, 3u);
    EXPECT_DOUBLE_EQ(t.total, 0.060);
    EXPECT_DOUBLE_EQ(t.min, 0.010);
    EXPECT_DOUBLE_EQ(t.max, 0.030);
    EXPECT_DOUBLE_EQ(t.mean, 0.020);
}

TEST(Metrics, UnknownTimerIsAllZero)
{
    MetricsRegistry reg;
    TimerSummary t = reg.timer("never");
    EXPECT_EQ(t.count, 0u);
    EXPECT_DOUBLE_EQ(t.total, 0.0);
    EXPECT_DOUBLE_EQ(t.p95, 0.0);
}

TEST(Metrics, NearestRankPercentiles)
{
    // 100 samples 1ms..100ms: nearest-rank p50 = ceil(0.50*100) = 50th
    // smallest = 50ms; p95 = 95th smallest = 95ms. Insertion order must
    // not matter, so insert descending.
    MetricsRegistry reg;
    for (int i = 100; i >= 1; i--)
        reg.record("phase", i * 1e-3);
    TimerSummary t = reg.timer("phase");
    EXPECT_DOUBLE_EQ(t.p50, 0.050);
    EXPECT_DOUBLE_EQ(t.p95, 0.095);
}

TEST(Metrics, PercentilesOfSingleSample)
{
    MetricsRegistry reg;
    reg.record("phase", 0.004);
    TimerSummary t = reg.timer("phase");
    EXPECT_DOUBLE_EQ(t.p50, 0.004);
    EXPECT_DOUBLE_EQ(t.p95, 0.004);
    EXPECT_DOUBLE_EQ(t.min, 0.004);
    EXPECT_DOUBLE_EQ(t.max, 0.004);
}

TEST(Metrics, RetentionBoundKeepsAggregatesExact)
{
    // Past kMaxSamplesPerTimer the percentile reservoir stops growing
    // but count/total/min/max keep absorbing every sample.
    MetricsRegistry reg;
    const std::size_t extra = 100;
    const std::size_t n = MetricsRegistry::kMaxSamplesPerTimer + extra;
    for (std::size_t i = 0; i < n; i++)
        reg.record("hot", 1e-6);
    reg.record("hot", 5e-3); // outlier arrives after the bound
    TimerSummary t = reg.timer("hot");
    EXPECT_EQ(t.count, n + 1);
    EXPECT_DOUBLE_EQ(t.min, 1e-6);
    EXPECT_DOUBLE_EQ(t.max, 5e-3); // exact even though not retained
    EXPECT_NEAR(t.total, n * 1e-6 + 5e-3, 1e-9);
    // Percentiles come from the retained prefix (all 1µs).
    EXPECT_DOUBLE_EQ(t.p50, 1e-6);
    EXPECT_DOUBLE_EQ(t.p95, 1e-6);
}

TEST(Metrics, TimerNamesListsOnlyRecordedTimers)
{
    MetricsRegistry reg;
    reg.record("b", 0.1);
    reg.record("a", 0.1);
    auto names = reg.timerNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a"); // map order: sorted
    EXPECT_EQ(names[1], "b");
}

TEST(Metrics, ClearAndEmpty)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.add("c");
    reg.set("g", 1.0);
    reg.record("t", 0.5);
    EXPECT_FALSE(reg.empty());
    reg.clear();
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.counter("c"), 0u);
    EXPECT_EQ(reg.timer("t").count, 0u);
}

} // namespace
