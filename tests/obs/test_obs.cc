/**
 * @file
 * Tests for the observability core: the Session value type, the
 * ScopedSession thread-local binding, the disabled fast path (no
 * recording at all), and RAII span nesting. The legacy global facade
 * (enable()/disable()/metrics()/tracer()) was removed on schedule
 * after its one deprecated release; obs::globalSession() is the only
 * process-wide remnant and is covered here too.
 */

#include <gtest/gtest.h>

#include "obs/obs.hh"

namespace {

using namespace mixedproxy::obs;

TEST(Obs, NothingBoundByDefaultRecordsNothing)
{
    ASSERT_FALSE(enabled());
    ASSERT_EQ(current(), nullptr);
    {
        Span span("phase");
        count("counter", 5);
        gauge("gauge", 1.0);
    }
    // Nothing listened, so there is nowhere the data could have gone;
    // the assertions above are really about not crashing and the
    // binding staying null.
    EXPECT_FALSE(enabled());
}

TEST(Obs, EnabledSpanRecordsEventAndTimerSample)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        Span span("phase");
    }
    session.disable();
    ASSERT_EQ(session.tracer.events().size(), 1u);
    const TraceEvent &e = session.tracer.events()[0];
    EXPECT_EQ(e.name, "phase");
    EXPECT_EQ(e.depth, 0);
    EXPECT_GE(e.durationUs, 0.0);
    EXPECT_GE(e.startUs, 0.0);
    EXPECT_EQ(session.metrics.timer("phase").count, 1u);
}

TEST(Obs, SpansNestAndRecordDepths)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        Span outer("outer");
        {
            Span inner("inner");
        }
        {
            Span inner2("inner");
        }
    }
    session.disable();
    // Completion order: inner, inner, outer.
    ASSERT_EQ(session.tracer.events().size(), 3u);
    EXPECT_EQ(session.tracer.events()[0].name, "inner");
    EXPECT_EQ(session.tracer.events()[0].depth, 1);
    EXPECT_EQ(session.tracer.events()[1].name, "inner");
    EXPECT_EQ(session.tracer.events()[1].depth, 1);
    EXPECT_EQ(session.tracer.events()[2].name, "outer");
    EXPECT_EQ(session.tracer.events()[2].depth, 0);
    // Children are contained in the parent's [start, start+duration].
    const TraceEvent &outer_ev = session.tracer.events()[2];
    for (std::size_t i = 0; i < 2; i++) {
        const TraceEvent &child = session.tracer.events()[i];
        EXPECT_GE(child.startUs, outer_ev.startUs);
        EXPECT_LE(child.startUs + child.durationUs,
                  outer_ev.startUs + outer_ev.durationUs + 1e-3);
    }
    EXPECT_EQ(session.metrics.timer("inner").count, 2u);
    EXPECT_EQ(session.metrics.timer("outer").count, 1u);
}

TEST(Obs, CountAndGaugeWhileEnabled)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        count("hits");
        count("hits", 2);
        gauge("ratio", 0.75);
    }
    session.disable();
    EXPECT_EQ(session.metrics.counter("hits"), 3u);
    EXPECT_DOUBLE_EQ(session.metrics.gauge("ratio"), 0.75);
}

TEST(Obs, EnableResetsPreviousSession)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        count("old");
        Span span("old_phase");
    }
    session.enable(); // fresh timeline
    EXPECT_TRUE(session.metrics.empty());
    EXPECT_TRUE(session.tracer.empty());
    session.disable();
}

TEST(Obs, DataStaysReadableAfterDisable)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        count("kept");
    }
    session.disable();
    EXPECT_EQ(session.metrics.counter("kept"), 1u);
}

TEST(Obs, SpanOutlivingDisableBalancesDepthWithoutRecording)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        Span outer("outer");
        session.disable();
    } // outer destructs disabled: depth must rebalance, no event
    EXPECT_TRUE(session.tracer.empty());
    EXPECT_EQ(session.depth, 0);
}

TEST(Obs, SpanOpenedBeforeBindingStaysDead)
{
    Session session;
    session.enable();
    std::size_t before = 0;
    {
        Span dead("dead"); // constructed with nothing bound
        ScopedSession bind(&session);
        before = session.tracer.events().size();
    } // never live, records nothing even though a session is now bound
    EXPECT_EQ(session.tracer.events().size(), before);
    EXPECT_EQ(session.metrics.timer("dead").count, 0u);
    session.disable();
}

TEST(Obs, ScopedSessionRoutesRecordingToAValueSession)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        ASSERT_TRUE(enabled());
        EXPECT_EQ(current(), &session);
        count("local");
        Span span("local_phase");
    }
    session.disable();
    // Everything landed in the value; the binding is gone afterwards.
    EXPECT_EQ(session.metrics.counter("local"), 1u);
    EXPECT_EQ(session.metrics.timer("local_phase").count, 1u);
    EXPECT_EQ(session.tracer.events().size(), 1u);
    EXPECT_FALSE(enabled());
}

TEST(Obs, ScopedSessionRestoresThePreviousBinding)
{
    Session outer_session, inner_session;
    outer_session.enable();
    inner_session.enable();
    {
        ScopedSession outer_bind(&outer_session);
        {
            ScopedSession inner_bind(&inner_session);
            count("inner");
        }
        count("outer"); // back on the outer session
    }
    outer_session.disable();
    inner_session.disable();
    EXPECT_EQ(inner_session.metrics.counter("inner"), 1u);
    EXPECT_EQ(inner_session.metrics.counter("outer"), 0u);
    EXPECT_EQ(outer_session.metrics.counter("outer"), 1u);
    EXPECT_EQ(outer_session.metrics.counter("inner"), 0u);
}

TEST(Obs, NullScopedSessionKeepsAmbientBinding)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        {
            ScopedSession noop(nullptr); // no-op: ambient stays
            count("ambient");
        }
    }
    session.disable();
    EXPECT_EQ(session.metrics.counter("ambient"), 1u);
}

TEST(Obs, DisabledScopedSessionSuppressesRecording)
{
    Session ambient;
    ambient.enable();
    Session silent; // explicitly passed but not enabled
    {
        ScopedSession bind(&ambient);
        {
            ScopedSession suppress(&silent);
            EXPECT_FALSE(enabled());
            count("suppressed");
        }
    }
    ambient.disable();
    // Neither the value session nor the ambient one recorded: an
    // explicitly passed session is the sink, period.
    EXPECT_TRUE(silent.metrics.empty());
    EXPECT_EQ(ambient.metrics.counter("suppressed"), 0u);
}

TEST(Obs, GlobalSessionIsOneSharedValue)
{
    Session &global = globalSession();
    EXPECT_EQ(&global, &globalSession());
    global.enable();
    {
        ScopedSession bind(&global);
        count("shared");
    }
    global.disable();
    EXPECT_EQ(global.metrics.counter("shared"), 1u);
    global.enable(); // leave it clean for other suites
    global.disable();
}

TEST(Obs, SessionThreadIdTagsItsSpans)
{
    Session session;
    session.threadId = 7;
    session.enable();
    {
        ScopedSession bind(&session);
        Span span("lane");
    }
    session.disable();
    ASSERT_EQ(session.tracer.events().size(), 1u);
    EXPECT_EQ(session.tracer.events()[0].tid, 7);
}

TEST(Obs, EnableWithOriginSharesTheParentTimeline)
{
    Session parent;
    parent.enable();
    {
        ScopedSession bind(&parent);
        Span span("parent_phase");
    }
    Session worker;
    worker.enableWithOrigin(parent.origin());
    {
        ScopedSession bind(&worker);
        Span span("worker_phase");
    }
    // The worker span started after the parent span did, on the same
    // clock — merged traces line up on one timeline.
    ASSERT_EQ(parent.tracer.events().size(), 1u);
    ASSERT_EQ(worker.tracer.events().size(), 1u);
    EXPECT_GE(worker.tracer.events()[0].startUs,
              parent.tracer.events()[0].startUs);
}

} // namespace
