/**
 * @file
 * Tests for the observability facade: enable/disable lifecycle, the
 * disabled fast path (no recording at all), and RAII span nesting.
 */

#include <gtest/gtest.h>

#include "obs/obs.hh"

// This file is the compatibility suite for the classic global facade
// (enable()/disable()/metrics()/tracer()), which is [[deprecated]]
// since ISSUE 6 but must keep working for out-of-tree callers — so the
// deprecation warnings are expected here, and only here.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace {

using namespace mixedproxy::obs;

/** Every test leaves the global session disabled and clean. */
class Obs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        disable();
        metrics().clear();
        tracer().clear();
    }

    void TearDown() override
    {
        disable();
        metrics().clear();
        tracer().clear();
    }
};

TEST_F(Obs, DisabledByDefaultRecordsNothing)
{
    ASSERT_FALSE(enabled());
    {
        Span span("phase");
        count("counter", 5);
        gauge("gauge", 1.0);
    }
    EXPECT_TRUE(metrics().empty());
    EXPECT_TRUE(tracer().empty());
}

TEST_F(Obs, EnabledSpanRecordsEventAndTimerSample)
{
    enable();
    {
        Span span("phase");
    }
    disable();
    ASSERT_EQ(tracer().events().size(), 1u);
    const TraceEvent &e = tracer().events()[0];
    EXPECT_EQ(e.name, "phase");
    EXPECT_EQ(e.depth, 0);
    EXPECT_GE(e.durationUs, 0.0);
    EXPECT_GE(e.startUs, 0.0);
    EXPECT_EQ(metrics().timer("phase").count, 1u);
}

TEST_F(Obs, SpansNestAndRecordDepths)
{
    enable();
    {
        Span outer("outer");
        {
            Span inner("inner");
        }
        {
            Span inner2("inner");
        }
    }
    disable();
    // Completion order: inner, inner, outer.
    ASSERT_EQ(tracer().events().size(), 3u);
    EXPECT_EQ(tracer().events()[0].name, "inner");
    EXPECT_EQ(tracer().events()[0].depth, 1);
    EXPECT_EQ(tracer().events()[1].name, "inner");
    EXPECT_EQ(tracer().events()[1].depth, 1);
    EXPECT_EQ(tracer().events()[2].name, "outer");
    EXPECT_EQ(tracer().events()[2].depth, 0);
    // Children are contained in the parent's [start, start+duration].
    const TraceEvent &outer_ev = tracer().events()[2];
    for (std::size_t i = 0; i < 2; i++) {
        const TraceEvent &child = tracer().events()[i];
        EXPECT_GE(child.startUs, outer_ev.startUs);
        EXPECT_LE(child.startUs + child.durationUs,
                  outer_ev.startUs + outer_ev.durationUs + 1e-3);
    }
    EXPECT_EQ(metrics().timer("inner").count, 2u);
    EXPECT_EQ(metrics().timer("outer").count, 1u);
}

TEST_F(Obs, CountAndGaugeWhileEnabled)
{
    enable();
    count("hits");
    count("hits", 2);
    gauge("ratio", 0.75);
    disable();
    EXPECT_EQ(metrics().counter("hits"), 3u);
    EXPECT_DOUBLE_EQ(metrics().gauge("ratio"), 0.75);
}

TEST_F(Obs, EnableResetsPreviousSession)
{
    enable();
    count("old");
    {
        Span span("old_phase");
    }
    enable(); // fresh session
    EXPECT_TRUE(metrics().empty());
    EXPECT_TRUE(tracer().empty());
    disable();
}

TEST_F(Obs, DataStaysReadableAfterDisable)
{
    enable();
    count("kept");
    disable();
    EXPECT_EQ(metrics().counter("kept"), 1u);
}

TEST_F(Obs, SpanOutlivingDisableBalancesDepthWithoutRecording)
{
    enable();
    {
        Span outer("outer");
        disable();
    } // outer destructs disabled: depth must rebalance, no event
    EXPECT_TRUE(tracer().empty());
    // If the depth leaked, this new root span would report depth > 0.
    enable();
    {
        Span root("root");
    }
    disable();
    ASSERT_EQ(tracer().events().size(), 1u);
    EXPECT_EQ(tracer().events()[0].depth, 0);
}

TEST_F(Obs, SpanOpenedWhileDisabledStaysDeadAfterEnable)
{
    std::size_t before;
    {
        Span dead("dead");
        enable();
        before = tracer().events().size();
    } // constructed disabled → never live, records nothing
    EXPECT_EQ(tracer().events().size(), before);
    EXPECT_EQ(metrics().timer("dead").count, 0u);
    disable();
}

TEST_F(Obs, ScopedSessionRoutesRecordingToAValueSession)
{
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        ASSERT_TRUE(enabled());
        EXPECT_EQ(current(), &session);
        count("local");
        Span span("local_phase");
    }
    session.disable();
    // Everything landed in the value, nothing in the global session.
    EXPECT_EQ(session.metrics.counter("local"), 1u);
    EXPECT_EQ(session.metrics.timer("local_phase").count, 1u);
    EXPECT_EQ(session.tracer.events().size(), 1u);
    EXPECT_TRUE(metrics().empty());
    EXPECT_TRUE(tracer().empty());
    EXPECT_FALSE(enabled());
}

TEST_F(Obs, ScopedSessionRestoresThePreviousBinding)
{
    enable(); // global session bound
    Session session;
    session.enable();
    {
        ScopedSession bind(&session);
        count("inner");
    }
    count("outer"); // back on the global session
    disable();
    EXPECT_EQ(session.metrics.counter("inner"), 1u);
    EXPECT_EQ(session.metrics.counter("outer"), 0u);
    EXPECT_EQ(metrics().counter("outer"), 1u);
    EXPECT_EQ(metrics().counter("inner"), 0u);
}

TEST_F(Obs, NullScopedSessionKeepsAmbientBinding)
{
    enable();
    {
        ScopedSession bind(nullptr); // no-op: ambient stays
        count("ambient");
    }
    disable();
    EXPECT_EQ(metrics().counter("ambient"), 1u);
}

TEST_F(Obs, DisabledScopedSessionSuppressesRecording)
{
    enable();
    Session session; // explicitly passed but not enabled
    {
        ScopedSession bind(&session);
        EXPECT_FALSE(enabled());
        count("suppressed");
    }
    disable();
    // Neither the value session nor the ambient global one recorded:
    // an explicitly passed session is the sink, period.
    EXPECT_TRUE(session.metrics.empty());
    EXPECT_EQ(metrics().counter("suppressed"), 0u);
}

TEST_F(Obs, SessionThreadIdTagsItsSpans)
{
    Session session;
    session.threadId = 7;
    session.enable();
    {
        ScopedSession bind(&session);
        Span span("lane");
    }
    session.disable();
    ASSERT_EQ(session.tracer.events().size(), 1u);
    EXPECT_EQ(session.tracer.events()[0].tid, 7);
}

TEST_F(Obs, EnableWithOriginSharesTheParentTimeline)
{
    Session parent;
    parent.enable();
    {
        ScopedSession bind(&parent);
        Span span("parent_phase");
    }
    Session worker;
    worker.enableWithOrigin(parent.origin());
    {
        ScopedSession bind(&worker);
        Span span("worker_phase");
    }
    // The worker span started after the parent span did, on the same
    // clock — merged traces line up on one timeline.
    ASSERT_EQ(parent.tracer.events().size(), 1u);
    ASSERT_EQ(worker.tracer.events().size(), 1u);
    EXPECT_GE(worker.tracer.events()[0].startUs,
              parent.tracer.events()[0].startUs);
}

} // namespace
