/**
 * @file
 * Tests for the exporters: JSON escaping, Chrome trace_event output,
 * the structured stats report, and the --timing table. The two JSON
 * emitters are hand-rolled, so every document is run through the full
 * JSON syntax checker in json_check.hh.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "json_check.hh"
#include "obs/report.hh"

namespace {

using namespace mixedproxy::obs;
using mixedproxy::testjson::JsonValue;
using mixedproxy::testjson::parseJson;

TEST(JsonEscape, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string("a\x01")), "a\\u0001");
}

TEST(ChromeTrace, EmptyTracerIsValidJson)
{
    Tracer tracer;
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_TRUE(doc->at("traceEvents").isArray());
    EXPECT_EQ(doc->at("traceEvents").array.size(), 0u);
}

TEST(ChromeTrace, EventsCarryChromeFields)
{
    Tracer tracer;
    tracer.record({"check", 10.0, 250.5, 0});
    tracer.record({"check.derived", 20.0, 100.0, 1});
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("displayTimeUnit").string, "ms");
    const auto &events = doc->at("traceEvents").array;
    ASSERT_EQ(events.size(), 2u);
    const JsonValue &e = events[0];
    EXPECT_EQ(e.at("name").string, "check");
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("cat").string, "mixedproxy");
    EXPECT_DOUBLE_EQ(e.at("pid").number, 0.0);
    EXPECT_DOUBLE_EQ(e.at("tid").number, 0.0);
    EXPECT_NEAR(e.at("ts").number, 10.0, 1e-6);
    EXPECT_NEAR(e.at("dur").number, 250.5, 1e-6);
    EXPECT_NEAR(e.at("args").at("depth").number, 0.0, 1e-9);
    EXPECT_NEAR(events[1].at("args").at("depth").number, 1.0, 1e-9);
}

TEST(ChromeTrace, EscapesEventNames)
{
    Tracer tracer;
    tracer.record({"weird\"name\n", 0.0, 1.0, 0});
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("traceEvents").array[0].at("name").string,
              "weird\"name\n");
}

TEST(StatsJson, EmptyRegistryIsValidAndComplete)
{
    MetricsRegistry reg;
    std::string error;
    auto doc = parseJson(statsJson(reg), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("schema").string, "mixedproxy.stats.v2");
    EXPECT_TRUE(doc->at("meta").isObject());
    EXPECT_TRUE(doc->at("build").isObject());
    EXPECT_TRUE(doc->at("counters").isObject());
    EXPECT_TRUE(doc->at("gauges").isObject());
    EXPECT_TRUE(doc->at("timers").isObject());
    EXPECT_TRUE(doc->at("enum_profile").isObject());
    for (const char *section :
         {"rejections", "depth_histogram", "branching", "sampled"}) {
        EXPECT_TRUE(doc->at("enum_profile").at(section).isObject())
            << section;
    }
}

TEST(StatsJson, BuildProvenanceHasAllFields)
{
    MetricsRegistry reg;
    std::string error;
    auto doc = parseJson(statsJson(reg), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue &build = doc->at("build");
    for (const char *key : {"git_sha", "compiler", "build_type"}) {
        ASSERT_TRUE(build.has(key)) << key;
        EXPECT_TRUE(build.at(key).isString()) << key;
        EXPECT_FALSE(build.at(key).string.empty()) << key;
    }
}

TEST(StatsJson, EnumCountersAreLiftedIntoEnumProfile)
{
    MetricsRegistry reg;
    reg.add("checker.candidates", 10);
    reg.add("checker.enum.reject.causality_b", 3);
    reg.add("checker.enum.reject.sc_per_location", 2);
    reg.add("checker.enum.depth.2", 5);
    reg.add("checker.enum.depth.overflow", 1);
    reg.add("checker.enum.rf.reads", 2);
    reg.add("checker.enum.co.orders", 6);
    reg.add("checker.enum.sampled.candidates", 7);
    std::string error;
    auto doc = parseJson(statsJson(reg), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    const JsonValue &profile = doc->at("enum_profile");
    EXPECT_DOUBLE_EQ(profile.at("rejections").at("causality_b").number,
                     3.0);
    EXPECT_DOUBLE_EQ(
        profile.at("rejections").at("sc_per_location").number, 2.0);
    EXPECT_DOUBLE_EQ(profile.at("depth_histogram").at("2").number, 5.0);
    EXPECT_DOUBLE_EQ(profile.at("depth_histogram").at("overflow").number,
                     1.0);
    EXPECT_DOUBLE_EQ(profile.at("branching").at("rf.reads").number, 2.0);
    EXPECT_DOUBLE_EQ(profile.at("branching").at("co.orders").number,
                     6.0);
    EXPECT_DOUBLE_EQ(profile.at("sampled").at("candidates").number, 7.0);

    // Lifted counters must not be duplicated in the flat section;
    // everything else stays where it was.
    const JsonValue &counters = doc->at("counters");
    EXPECT_FALSE(counters.has("checker.enum.reject.causality_b"));
    EXPECT_FALSE(counters.has("checker.enum.depth.2"));
    EXPECT_TRUE(counters.has("checker.candidates"));
}

TEST(StatsJson, RendersAllMetricKindsAndMeta)
{
    MetricsRegistry reg;
    reg.add("checker.candidates", 64);
    reg.set("sim.mean_latency_cycles", 3.5);
    reg.record("check", 0.002);
    reg.record("check", 0.004);
    std::map<std::string, std::string> meta{{"tool", "nvlitmus"},
                                            {"model", "ptx75"}};
    std::string error;
    auto doc = parseJson(statsJson(reg, meta), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("meta").at("tool").string, "nvlitmus");
    EXPECT_EQ(doc->at("meta").at("model").string, "ptx75");
    EXPECT_DOUBLE_EQ(doc->at("counters").at("checker.candidates").number,
                     64.0);
    EXPECT_NEAR(doc->at("gauges").at("sim.mean_latency_cycles").number,
                3.5, 1e-6);
    const JsonValue &timer = doc->at("timers").at("check");
    ASSERT_TRUE(timer.isObject());
    for (const char *key : {"count", "total_ms", "min_ms", "mean_ms",
                            "p50_ms", "p95_ms", "max_ms"}) {
        EXPECT_TRUE(timer.has(key)) << "missing timer key " << key;
    }
    EXPECT_DOUBLE_EQ(timer.at("count").number, 2.0);
    EXPECT_NEAR(timer.at("total_ms").number, 6.0, 1e-3);
    EXPECT_NEAR(timer.at("min_ms").number, 2.0, 1e-3);
    EXPECT_NEAR(timer.at("max_ms").number, 4.0, 1e-3);
    EXPECT_NEAR(timer.at("mean_ms").number, 3.0, 1e-3);
}

TEST(StatsJson, EscapesMetaAndNames)
{
    MetricsRegistry reg;
    reg.add("odd\"counter", 1);
    std::map<std::string, std::string> meta{{"k\"ey", "v\\alue"}};
    std::string error;
    auto doc = parseJson(statsJson(reg, meta), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("meta").at("k\"ey").string, "v\\alue");
    EXPECT_TRUE(doc->at("counters").has("odd\"counter"));
}

TEST(TimingTable, ListsPhasesByTotalDescendingAndCounters)
{
    MetricsRegistry reg;
    reg.record("fast", 0.001);
    reg.record("slow", 0.100);
    reg.add("checker.candidates", 9);
    std::string table = timingTable(reg);
    EXPECT_NE(table.find("phase"), std::string::npos);
    auto slow_pos = table.find("slow");
    auto fast_pos = table.find("fast");
    ASSERT_NE(slow_pos, std::string::npos);
    ASSERT_NE(fast_pos, std::string::npos);
    EXPECT_LT(slow_pos, fast_pos); // sorted by total time, descending
    EXPECT_NE(table.find("checker.candidates"), std::string::npos);
}

TEST(TimingTable, EmptyRegistryExplainsItself)
{
    MetricsRegistry reg;
    EXPECT_NE(timingTable(reg).find("(no phases recorded)"),
              std::string::npos);
}

TEST(ChromeTrace, RequestIdIsAnEventArgument)
{
    Tracer tracer;
    tracer.record({"engine.request", 1.0, 2.0, 0, 3, 42});
    tracer.record({"parse", 1.0, 2.0, 0, 0, 0});
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto &events = doc->at("traceEvents").array;
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NEAR(events[0].at("args").at("request_id").number, 42.0,
                1e-9);
    // Id zero means "not a daemon request" and is omitted entirely.
    EXPECT_FALSE(events[1].at("args").has("request_id"));
}

TEST(EnumProfileTable, RendersEverySection)
{
    MetricsRegistry reg;
    reg.add("checker.candidates", 12);
    reg.add("checker.consistent", 4);
    reg.add("checker.enum.reject.causality_b", 5);
    reg.add("checker.enum.reject.no_thin_air", 2);
    reg.add("checker.enum.depth.3", 12);
    reg.add("checker.enum.rf.reads", 3);
    reg.add("checker.enum.rf.source_slots", 9);
    reg.add("checker.enum.co.locations", 2);
    reg.add("checker.enum.co.orders", 4);
    reg.add("checker.fastpath.hits", 6);
    std::string table = enumProfileTable(reg);
    EXPECT_NE(table.find("enumeration profile"), std::string::npos);
    EXPECT_NE(table.find("causality_b"), std::string::npos);
    EXPECT_NE(table.find("no_thin_air"), std::string::npos);
    EXPECT_NE(table.find("depth 3"), std::string::npos);
    EXPECT_NE(table.find("rf sources per read"), std::string::npos);
    EXPECT_NE(table.find("(9/3)"), std::string::npos);
    EXPECT_NE(table.find("co orders per location"), std::string::npos);
    EXPECT_NE(table.find("fastpath hits"), std::string::npos);
    // Without samples the table says how to get them.
    EXPECT_NE(table.find("--profile-enum"), std::string::npos);
}

TEST(EnumProfileTable, SampledSectionShowsPerCandidateCost)
{
    MetricsRegistry reg;
    reg.add("checker.enum.sampled.candidates", 4);
    reg.add("checker.enum.sampled.co_build_ns", 8000);
    reg.add("checker.enum.sampled.axiom.causality_b_ns", 4000);
    std::string table = enumProfileTable(reg);
    EXPECT_NE(table.find("sampled wall clock (4 candidates)"),
              std::string::npos);
    EXPECT_NE(table.find("co+fr build"), std::string::npos);
    EXPECT_NE(table.find("axiom causality_b"), std::string::npos);
}

TEST(Prometheus, RendersAllMetricKindsAndBuildInfo)
{
    MetricsRegistry reg;
    reg.add("checker.candidates", 64);
    reg.set("sim.mean_latency_cycles", 3.5);
    reg.record("check", 0.002);
    std::map<std::string, std::string> meta{{"tool", "nvlitmus"}};
    std::string text = prometheusText(reg, meta);
    EXPECT_NE(text.find("mixedproxy_build_info{"), std::string::npos);
    EXPECT_NE(text.find("git_sha=\""), std::string::npos);
    EXPECT_NE(text.find("tool=\"nvlitmus\""), std::string::npos);
    EXPECT_NE(text.find("mixedproxy_checker_candidates_total 64"),
              std::string::npos);
    EXPECT_NE(text.find("mixedproxy_sim_mean_latency_cycles"),
              std::string::npos);
    EXPECT_NE(text.find("mixedproxy_check_seconds{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("mixedproxy_check_seconds_count 1"),
              std::string::npos);
    // Every line is either a comment or "name[{labels}] value".
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#')
            continue;
        EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
}

TEST(Prometheus, SanitizesMetricNames)
{
    MetricsRegistry reg;
    reg.add("weird.name-with/chars", 1);
    std::string text = prometheusText(reg);
    EXPECT_NE(text.find("mixedproxy_weird_name_with_chars_total 1"),
              std::string::npos);
}

} // namespace
