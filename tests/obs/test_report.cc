/**
 * @file
 * Tests for the exporters: JSON escaping, Chrome trace_event output,
 * the structured stats report, and the --timing table. The two JSON
 * emitters are hand-rolled, so every document is run through the full
 * JSON syntax checker in json_check.hh.
 */

#include <gtest/gtest.h>

#include "json_check.hh"
#include "obs/report.hh"

namespace {

using namespace mixedproxy::obs;
using mixedproxy::testjson::JsonValue;
using mixedproxy::testjson::parseJson;

TEST(JsonEscape, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string("a\x01")), "a\\u0001");
}

TEST(ChromeTrace, EmptyTracerIsValidJson)
{
    Tracer tracer;
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_TRUE(doc->at("traceEvents").isArray());
    EXPECT_EQ(doc->at("traceEvents").array.size(), 0u);
}

TEST(ChromeTrace, EventsCarryChromeFields)
{
    Tracer tracer;
    tracer.record({"check", 10.0, 250.5, 0});
    tracer.record({"check.derived", 20.0, 100.0, 1});
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("displayTimeUnit").string, "ms");
    const auto &events = doc->at("traceEvents").array;
    ASSERT_EQ(events.size(), 2u);
    const JsonValue &e = events[0];
    EXPECT_EQ(e.at("name").string, "check");
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("cat").string, "mixedproxy");
    EXPECT_DOUBLE_EQ(e.at("pid").number, 0.0);
    EXPECT_DOUBLE_EQ(e.at("tid").number, 0.0);
    EXPECT_NEAR(e.at("ts").number, 10.0, 1e-6);
    EXPECT_NEAR(e.at("dur").number, 250.5, 1e-6);
    EXPECT_NEAR(e.at("args").at("depth").number, 0.0, 1e-9);
    EXPECT_NEAR(events[1].at("args").at("depth").number, 1.0, 1e-9);
}

TEST(ChromeTrace, EscapesEventNames)
{
    Tracer tracer;
    tracer.record({"weird\"name\n", 0.0, 1.0, 0});
    std::string error;
    auto doc = parseJson(chromeTraceJson(tracer), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("traceEvents").array[0].at("name").string,
              "weird\"name\n");
}

TEST(StatsJson, EmptyRegistryIsValidAndComplete)
{
    MetricsRegistry reg;
    std::string error;
    auto doc = parseJson(statsJson(reg), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("schema").string, "mixedproxy.stats.v1");
    EXPECT_TRUE(doc->at("meta").isObject());
    EXPECT_TRUE(doc->at("counters").isObject());
    EXPECT_TRUE(doc->at("gauges").isObject());
    EXPECT_TRUE(doc->at("timers").isObject());
}

TEST(StatsJson, RendersAllMetricKindsAndMeta)
{
    MetricsRegistry reg;
    reg.add("checker.candidates", 64);
    reg.set("sim.mean_latency_cycles", 3.5);
    reg.record("check", 0.002);
    reg.record("check", 0.004);
    std::map<std::string, std::string> meta{{"tool", "nvlitmus"},
                                            {"model", "ptx75"}};
    std::string error;
    auto doc = parseJson(statsJson(reg, meta), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("meta").at("tool").string, "nvlitmus");
    EXPECT_EQ(doc->at("meta").at("model").string, "ptx75");
    EXPECT_DOUBLE_EQ(doc->at("counters").at("checker.candidates").number,
                     64.0);
    EXPECT_NEAR(doc->at("gauges").at("sim.mean_latency_cycles").number,
                3.5, 1e-6);
    const JsonValue &timer = doc->at("timers").at("check");
    ASSERT_TRUE(timer.isObject());
    for (const char *key : {"count", "total_ms", "min_ms", "mean_ms",
                            "p50_ms", "p95_ms", "max_ms"}) {
        EXPECT_TRUE(timer.has(key)) << "missing timer key " << key;
    }
    EXPECT_DOUBLE_EQ(timer.at("count").number, 2.0);
    EXPECT_NEAR(timer.at("total_ms").number, 6.0, 1e-3);
    EXPECT_NEAR(timer.at("min_ms").number, 2.0, 1e-3);
    EXPECT_NEAR(timer.at("max_ms").number, 4.0, 1e-3);
    EXPECT_NEAR(timer.at("mean_ms").number, 3.0, 1e-3);
}

TEST(StatsJson, EscapesMetaAndNames)
{
    MetricsRegistry reg;
    reg.add("odd\"counter", 1);
    std::map<std::string, std::string> meta{{"k\"ey", "v\\alue"}};
    std::string error;
    auto doc = parseJson(statsJson(reg, meta), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->at("meta").at("k\"ey").string, "v\\alue");
    EXPECT_TRUE(doc->at("counters").has("odd\"counter"));
}

TEST(TimingTable, ListsPhasesByTotalDescendingAndCounters)
{
    MetricsRegistry reg;
    reg.record("fast", 0.001);
    reg.record("slow", 0.100);
    reg.add("checker.candidates", 9);
    std::string table = timingTable(reg);
    EXPECT_NE(table.find("phase"), std::string::npos);
    auto slow_pos = table.find("slow");
    auto fast_pos = table.find("fast");
    ASSERT_NE(slow_pos, std::string::npos);
    ASSERT_NE(fast_pos, std::string::npos);
    EXPECT_LT(slow_pos, fast_pos); // sorted by total time, descending
    EXPECT_NE(table.find("checker.candidates"), std::string::npos);
}

TEST(TimingTable, EmptyRegistryExplainsItself)
{
    MetricsRegistry reg;
    EXPECT_NE(timingTable(reg).find("(no phases recorded)"),
              std::string::npos);
}

} // namespace
