# Empty dependencies file for fig5_decode.
# This may be replaced when dependencies are built.
