file(REMOVE_RECURSE
  "CMakeFiles/fig5_decode.dir/fig5_decode.cc.o"
  "CMakeFiles/fig5_decode.dir/fig5_decode.cc.o.d"
  "fig5_decode"
  "fig5_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
