file(REMOVE_RECURSE
  "CMakeFiles/fig4_intrathread.dir/fig4_intrathread.cc.o"
  "CMakeFiles/fig4_intrathread.dir/fig4_intrathread.cc.o.d"
  "fig4_intrathread"
  "fig4_intrathread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_intrathread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
