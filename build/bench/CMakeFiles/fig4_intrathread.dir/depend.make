# Empty dependencies file for fig4_intrathread.
# This may be replaced when dependencies are built.
