# Empty compiler generated dependencies file for fig9_causality.
# This may be replaced when dependencies are built.
