file(REMOVE_RECURSE
  "CMakeFiles/fig9_causality.dir/fig9_causality.cc.o"
  "CMakeFiles/fig9_causality.dir/fig9_causality.cc.o.d"
  "fig9_causality"
  "fig9_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
