# Empty compiler generated dependencies file for checker_perf.
# This may be replaced when dependencies are built.
