file(REMOVE_RECURSE
  "CMakeFiles/checker_perf.dir/checker_perf.cc.o"
  "CMakeFiles/checker_perf.dir/checker_perf.cc.o.d"
  "checker_perf"
  "checker_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
