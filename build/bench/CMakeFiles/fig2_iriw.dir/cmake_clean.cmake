file(REMOVE_RECURSE
  "CMakeFiles/fig2_iriw.dir/fig2_iriw.cc.o"
  "CMakeFiles/fig2_iriw.dir/fig2_iriw.cc.o.d"
  "fig2_iriw"
  "fig2_iriw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_iriw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
