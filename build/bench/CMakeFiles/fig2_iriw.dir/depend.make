# Empty dependencies file for fig2_iriw.
# This may be replaced when dependencies are built.
