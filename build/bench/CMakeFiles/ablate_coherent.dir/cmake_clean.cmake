file(REMOVE_RECURSE
  "CMakeFiles/ablate_coherent.dir/ablate_coherent.cc.o"
  "CMakeFiles/ablate_coherent.dir/ablate_coherent.cc.o.d"
  "ablate_coherent"
  "ablate_coherent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coherent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
