# Empty dependencies file for ablate_coherent.
# This may be replaced when dependencies are built.
