# Empty dependencies file for ext_proxies.
# This may be replaced when dependencies are built.
