file(REMOVE_RECURSE
  "CMakeFiles/ext_proxies.dir/ext_proxies.cc.o"
  "CMakeFiles/ext_proxies.dir/ext_proxies.cc.o.d"
  "ext_proxies"
  "ext_proxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
