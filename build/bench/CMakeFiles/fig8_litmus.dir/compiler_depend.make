# Empty compiler generated dependencies file for fig8_litmus.
# This may be replaced when dependencies are built.
