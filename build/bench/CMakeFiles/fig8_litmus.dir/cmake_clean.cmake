file(REMOVE_RECURSE
  "CMakeFiles/fig8_litmus.dir/fig8_litmus.cc.o"
  "CMakeFiles/fig8_litmus.dir/fig8_litmus.cc.o.d"
  "fig8_litmus"
  "fig8_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
