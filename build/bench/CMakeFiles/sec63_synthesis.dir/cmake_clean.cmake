file(REMOVE_RECURSE
  "CMakeFiles/sec63_synthesis.dir/sec63_synthesis.cc.o"
  "CMakeFiles/sec63_synthesis.dir/sec63_synthesis.cc.o.d"
  "sec63_synthesis"
  "sec63_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
