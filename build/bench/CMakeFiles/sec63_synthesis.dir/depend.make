# Empty dependencies file for sec63_synthesis.
# This may be replaced when dependencies are built.
