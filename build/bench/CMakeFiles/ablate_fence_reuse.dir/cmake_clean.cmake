file(REMOVE_RECURSE
  "CMakeFiles/ablate_fence_reuse.dir/ablate_fence_reuse.cc.o"
  "CMakeFiles/ablate_fence_reuse.dir/ablate_fence_reuse.cc.o.d"
  "ablate_fence_reuse"
  "ablate_fence_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fence_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
