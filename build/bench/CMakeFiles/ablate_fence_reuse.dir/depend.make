# Empty dependencies file for ablate_fence_reuse.
# This may be replaced when dependencies are built.
