file(REMOVE_RECURSE
  "CMakeFiles/mp_synth.dir/generator.cc.o"
  "CMakeFiles/mp_synth.dir/generator.cc.o.d"
  "CMakeFiles/mp_synth.dir/mutate.cc.o"
  "CMakeFiles/mp_synth.dir/mutate.cc.o.d"
  "CMakeFiles/mp_synth.dir/sc_reference.cc.o"
  "CMakeFiles/mp_synth.dir/sc_reference.cc.o.d"
  "CMakeFiles/mp_synth.dir/shrink.cc.o"
  "CMakeFiles/mp_synth.dir/shrink.cc.o.d"
  "libmp_synth.a"
  "libmp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
