# Empty compiler generated dependencies file for mp_synth.
# This may be replaced when dependencies are built.
