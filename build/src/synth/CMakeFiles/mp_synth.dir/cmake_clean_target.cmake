file(REMOVE_RECURSE
  "libmp_synth.a"
)
