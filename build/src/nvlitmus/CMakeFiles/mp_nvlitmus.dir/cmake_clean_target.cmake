file(REMOVE_RECURSE
  "libmp_nvlitmus.a"
)
