file(REMOVE_RECURSE
  "CMakeFiles/mp_nvlitmus.dir/driver.cc.o"
  "CMakeFiles/mp_nvlitmus.dir/driver.cc.o.d"
  "libmp_nvlitmus.a"
  "libmp_nvlitmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_nvlitmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
