# Empty dependencies file for mp_nvlitmus.
# This may be replaced when dependencies are built.
