# Empty dependencies file for mp_litmus.
# This may be replaced when dependencies are built.
