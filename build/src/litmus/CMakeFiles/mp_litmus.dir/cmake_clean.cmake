file(REMOVE_RECURSE
  "CMakeFiles/mp_litmus.dir/expr.cc.o"
  "CMakeFiles/mp_litmus.dir/expr.cc.o.d"
  "CMakeFiles/mp_litmus.dir/instruction.cc.o"
  "CMakeFiles/mp_litmus.dir/instruction.cc.o.d"
  "CMakeFiles/mp_litmus.dir/outcome.cc.o"
  "CMakeFiles/mp_litmus.dir/outcome.cc.o.d"
  "CMakeFiles/mp_litmus.dir/parser.cc.o"
  "CMakeFiles/mp_litmus.dir/parser.cc.o.d"
  "CMakeFiles/mp_litmus.dir/registry.cc.o"
  "CMakeFiles/mp_litmus.dir/registry.cc.o.d"
  "CMakeFiles/mp_litmus.dir/test.cc.o"
  "CMakeFiles/mp_litmus.dir/test.cc.o.d"
  "CMakeFiles/mp_litmus.dir/types.cc.o"
  "CMakeFiles/mp_litmus.dir/types.cc.o.d"
  "libmp_litmus.a"
  "libmp_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
