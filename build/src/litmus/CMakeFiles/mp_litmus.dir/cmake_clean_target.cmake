file(REMOVE_RECURSE
  "libmp_litmus.a"
)
