# Empty compiler generated dependencies file for mp_relation.
# This may be replaced when dependencies are built.
