file(REMOVE_RECURSE
  "CMakeFiles/mp_relation.dir/event_set.cc.o"
  "CMakeFiles/mp_relation.dir/event_set.cc.o.d"
  "CMakeFiles/mp_relation.dir/relation.cc.o"
  "CMakeFiles/mp_relation.dir/relation.cc.o.d"
  "libmp_relation.a"
  "libmp_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
