file(REMOVE_RECURSE
  "libmp_relation.a"
)
