
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/checker.cc" "src/model/CMakeFiles/mp_model.dir/checker.cc.o" "gcc" "src/model/CMakeFiles/mp_model.dir/checker.cc.o.d"
  "/root/repo/src/model/event.cc" "src/model/CMakeFiles/mp_model.dir/event.cc.o" "gcc" "src/model/CMakeFiles/mp_model.dir/event.cc.o.d"
  "/root/repo/src/model/program.cc" "src/model/CMakeFiles/mp_model.dir/program.cc.o" "gcc" "src/model/CMakeFiles/mp_model.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litmus/CMakeFiles/mp_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mp_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
