file(REMOVE_RECURSE
  "CMakeFiles/mp_model.dir/checker.cc.o"
  "CMakeFiles/mp_model.dir/checker.cc.o.d"
  "CMakeFiles/mp_model.dir/event.cc.o"
  "CMakeFiles/mp_model.dir/event.cc.o.d"
  "CMakeFiles/mp_model.dir/program.cc.o"
  "CMakeFiles/mp_model.dir/program.cc.o.d"
  "libmp_model.a"
  "libmp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
