file(REMOVE_RECURSE
  "libmp_microarch.a"
)
