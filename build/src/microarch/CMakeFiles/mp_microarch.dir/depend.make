# Empty dependencies file for mp_microarch.
# This may be replaced when dependencies are built.
