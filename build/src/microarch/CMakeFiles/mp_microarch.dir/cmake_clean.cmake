file(REMOVE_RECURSE
  "CMakeFiles/mp_microarch.dir/cache.cc.o"
  "CMakeFiles/mp_microarch.dir/cache.cc.o.d"
  "CMakeFiles/mp_microarch.dir/explore.cc.o"
  "CMakeFiles/mp_microarch.dir/explore.cc.o.d"
  "CMakeFiles/mp_microarch.dir/machine.cc.o"
  "CMakeFiles/mp_microarch.dir/machine.cc.o.d"
  "CMakeFiles/mp_microarch.dir/simulator.cc.o"
  "CMakeFiles/mp_microarch.dir/simulator.cc.o.d"
  "libmp_microarch.a"
  "libmp_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
