
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microarch/cache.cc" "src/microarch/CMakeFiles/mp_microarch.dir/cache.cc.o" "gcc" "src/microarch/CMakeFiles/mp_microarch.dir/cache.cc.o.d"
  "/root/repo/src/microarch/explore.cc" "src/microarch/CMakeFiles/mp_microarch.dir/explore.cc.o" "gcc" "src/microarch/CMakeFiles/mp_microarch.dir/explore.cc.o.d"
  "/root/repo/src/microarch/machine.cc" "src/microarch/CMakeFiles/mp_microarch.dir/machine.cc.o" "gcc" "src/microarch/CMakeFiles/mp_microarch.dir/machine.cc.o.d"
  "/root/repo/src/microarch/simulator.cc" "src/microarch/CMakeFiles/mp_microarch.dir/simulator.cc.o" "gcc" "src/microarch/CMakeFiles/mp_microarch.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litmus/CMakeFiles/mp_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mp_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
