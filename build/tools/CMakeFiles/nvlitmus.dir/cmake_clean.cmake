file(REMOVE_RECURSE
  "CMakeFiles/nvlitmus.dir/nvlitmus_main.cc.o"
  "CMakeFiles/nvlitmus.dir/nvlitmus_main.cc.o.d"
  "nvlitmus"
  "nvlitmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvlitmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
