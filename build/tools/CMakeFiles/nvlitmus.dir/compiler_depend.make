# Empty compiler generated dependencies file for nvlitmus.
# This may be replaced when dependencies are built.
