file(REMOVE_RECURSE
  "CMakeFiles/kernel_fusion.dir/kernel_fusion.cpp.o"
  "CMakeFiles/kernel_fusion.dir/kernel_fusion.cpp.o.d"
  "kernel_fusion"
  "kernel_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
