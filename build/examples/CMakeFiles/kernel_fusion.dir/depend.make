# Empty dependencies file for kernel_fusion.
# This may be replaced when dependencies are built.
