file(REMOVE_RECURSE
  "CMakeFiles/texture_generation.dir/texture_generation.cpp.o"
  "CMakeFiles/texture_generation.dir/texture_generation.cpp.o.d"
  "texture_generation"
  "texture_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texture_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
