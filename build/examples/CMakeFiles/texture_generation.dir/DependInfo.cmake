
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/texture_generation.cpp" "examples/CMakeFiles/texture_generation.dir/texture_generation.cpp.o" "gcc" "examples/CMakeFiles/texture_generation.dir/texture_generation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/microarch/CMakeFiles/mp_microarch.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/mp_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mp_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
