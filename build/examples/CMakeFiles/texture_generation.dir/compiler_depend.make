# Empty compiler generated dependencies file for texture_generation.
# This may be replaced when dependencies are built.
