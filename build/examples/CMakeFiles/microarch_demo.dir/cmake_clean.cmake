file(REMOVE_RECURSE
  "CMakeFiles/microarch_demo.dir/microarch_demo.cpp.o"
  "CMakeFiles/microarch_demo.dir/microarch_demo.cpp.o.d"
  "microarch_demo"
  "microarch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microarch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
