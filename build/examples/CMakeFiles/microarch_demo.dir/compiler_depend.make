# Empty compiler generated dependencies file for microarch_demo.
# This may be replaced when dependencies are built.
