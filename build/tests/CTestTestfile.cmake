# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_relation[1]_include.cmake")
include("/root/repo/build/tests/test_litmus[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_microarch[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_nvlitmus[1]_include.cmake")
