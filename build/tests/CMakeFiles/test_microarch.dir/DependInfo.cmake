
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/microarch/test_async_machine.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_async_machine.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_async_machine.cc.o.d"
  "/root/repo/tests/microarch/test_barrier_machine.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_barrier_machine.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_barrier_machine.cc.o.d"
  "/root/repo/tests/microarch/test_cache.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_cache.cc.o.d"
  "/root/repo/tests/microarch/test_explore.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_explore.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_explore.cc.o.d"
  "/root/repo/tests/microarch/test_machine.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_machine.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_machine.cc.o.d"
  "/root/repo/tests/microarch/test_multigpu.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_multigpu.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_multigpu.cc.o.d"
  "/root/repo/tests/microarch/test_simulator.cc" "tests/CMakeFiles/test_microarch.dir/microarch/test_simulator.cc.o" "gcc" "tests/CMakeFiles/test_microarch.dir/microarch/test_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/mp_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mp_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/microarch/CMakeFiles/mp_microarch.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/nvlitmus/CMakeFiles/mp_nvlitmus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
