file(REMOVE_RECURSE
  "CMakeFiles/test_microarch.dir/microarch/test_async_machine.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_async_machine.cc.o.d"
  "CMakeFiles/test_microarch.dir/microarch/test_barrier_machine.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_barrier_machine.cc.o.d"
  "CMakeFiles/test_microarch.dir/microarch/test_cache.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_cache.cc.o.d"
  "CMakeFiles/test_microarch.dir/microarch/test_explore.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_explore.cc.o.d"
  "CMakeFiles/test_microarch.dir/microarch/test_machine.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_machine.cc.o.d"
  "CMakeFiles/test_microarch.dir/microarch/test_multigpu.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_multigpu.cc.o.d"
  "CMakeFiles/test_microarch.dir/microarch/test_simulator.cc.o"
  "CMakeFiles/test_microarch.dir/microarch/test_simulator.cc.o.d"
  "test_microarch"
  "test_microarch.pdb"
  "test_microarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
