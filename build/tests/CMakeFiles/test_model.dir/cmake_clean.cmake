file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/test_async.cc.o"
  "CMakeFiles/test_model.dir/model/test_async.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_barrier.cc.o"
  "CMakeFiles/test_model.dir/model/test_barrier.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_checker.cc.o"
  "CMakeFiles/test_model.dir/model/test_checker.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_derived.cc.o"
  "CMakeFiles/test_model.dir/model/test_derived.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_paper_figures.cc.o"
  "CMakeFiles/test_model.dir/model/test_paper_figures.cc.o.d"
  "CMakeFiles/test_model.dir/model/test_program.cc.o"
  "CMakeFiles/test_model.dir/model/test_program.cc.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
