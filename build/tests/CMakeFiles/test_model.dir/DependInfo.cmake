
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_async.cc" "tests/CMakeFiles/test_model.dir/model/test_async.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_async.cc.o.d"
  "/root/repo/tests/model/test_barrier.cc" "tests/CMakeFiles/test_model.dir/model/test_barrier.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_barrier.cc.o.d"
  "/root/repo/tests/model/test_checker.cc" "tests/CMakeFiles/test_model.dir/model/test_checker.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_checker.cc.o.d"
  "/root/repo/tests/model/test_derived.cc" "tests/CMakeFiles/test_model.dir/model/test_derived.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_derived.cc.o.d"
  "/root/repo/tests/model/test_paper_figures.cc" "tests/CMakeFiles/test_model.dir/model/test_paper_figures.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_paper_figures.cc.o.d"
  "/root/repo/tests/model/test_program.cc" "tests/CMakeFiles/test_model.dir/model/test_program.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/mp_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/mp_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/microarch/CMakeFiles/mp_microarch.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/nvlitmus/CMakeFiles/mp_nvlitmus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
