file(REMOVE_RECURSE
  "CMakeFiles/test_litmus.dir/litmus/test_corpus_files.cc.o"
  "CMakeFiles/test_litmus.dir/litmus/test_corpus_files.cc.o.d"
  "CMakeFiles/test_litmus.dir/litmus/test_expr.cc.o"
  "CMakeFiles/test_litmus.dir/litmus/test_expr.cc.o.d"
  "CMakeFiles/test_litmus.dir/litmus/test_instruction.cc.o"
  "CMakeFiles/test_litmus.dir/litmus/test_instruction.cc.o.d"
  "CMakeFiles/test_litmus.dir/litmus/test_parser.cc.o"
  "CMakeFiles/test_litmus.dir/litmus/test_parser.cc.o.d"
  "CMakeFiles/test_litmus.dir/litmus/test_registry.cc.o"
  "CMakeFiles/test_litmus.dir/litmus/test_registry.cc.o.d"
  "test_litmus"
  "test_litmus.pdb"
  "test_litmus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
