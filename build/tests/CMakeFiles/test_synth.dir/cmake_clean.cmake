file(REMOVE_RECURSE
  "CMakeFiles/test_synth.dir/synth/test_cross_validation.cc.o"
  "CMakeFiles/test_synth.dir/synth/test_cross_validation.cc.o.d"
  "CMakeFiles/test_synth.dir/synth/test_generator.cc.o"
  "CMakeFiles/test_synth.dir/synth/test_generator.cc.o.d"
  "CMakeFiles/test_synth.dir/synth/test_sc_reference.cc.o"
  "CMakeFiles/test_synth.dir/synth/test_sc_reference.cc.o.d"
  "CMakeFiles/test_synth.dir/synth/test_shrink.cc.o"
  "CMakeFiles/test_synth.dir/synth/test_shrink.cc.o.d"
  "test_synth"
  "test_synth.pdb"
  "test_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
