# Empty dependencies file for test_nvlitmus.
# This may be replaced when dependencies are built.
