file(REMOVE_RECURSE
  "CMakeFiles/test_nvlitmus.dir/nvlitmus/test_driver.cc.o"
  "CMakeFiles/test_nvlitmus.dir/nvlitmus/test_driver.cc.o.d"
  "test_nvlitmus"
  "test_nvlitmus.pdb"
  "test_nvlitmus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvlitmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
