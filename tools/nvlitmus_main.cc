/**
 * @file
 * Entry point of the `nvlitmus` command-line tool.
 */

#include <iostream>
#include <string>
#include <vector>

#include "nvlitmus/driver.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        return mixedproxy::nvlitmus::runCli(args, std::cout, std::cerr);
    } catch (const std::exception &e) {
        std::cerr << "nvlitmus: internal error: " << e.what() << "\n";
        return 2;
    }
}
