/**
 * @file
 * tracegen: deterministic seeded generator of `mixedproxy.trace.v1`
 * execution traces from the built-in litmus corpus, with optional
 * single-fault injection (conform/fault.hh) for exercising the
 * streaming conformance checker's violation reporting. Used by the
 * randomized differential suite and the CI conformance job; the same
 * (test, seed, mode, fault, fault-seed) tuple always produces the same
 * bytes.
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "conform/fault.hh"
#include "litmus/registry.hh"
#include "microarch/simulator.hh"
#include "relation/error.hh"

namespace {

constexpr const char *kUsage =
    R"(tracegen - deterministic mixedproxy.trace.v1 trace generator

usage: tracegen --test NAME [options]

options:
  --test NAME      built-in litmus test to simulate (see --list)
  --seed N         schedule seed (default 1)
  --mode MODE      machine coherence mode: proxy (default), coherent,
                   or fence-reuse
  --fault KIND     inject one seeded fault into the recorded trace:
                   drop (delete a committed store's st line),
                   reorder (swap two commits' write identities), or
                   corrupt (flip a load's observed value)
  --fault-seed N   seed choosing among the viable fault sites
                   (default 1)
  -o FILE          write the trace to FILE (default: stdout)
  --list           list the built-in litmus tests and exit
  --help, -h       show this text

exit status: 0 trace written, 2 bad usage or unknown test,
             3 the trace offers no viable site for --fault
)";

bool
parseUint(const std::string &value, std::uint64_t *out)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return false;
    try {
        *out = std::stoull(value);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mixedproxy;

    std::string testName;
    std::string outPath;
    std::uint64_t seed = 1;
    std::uint64_t faultSeed = 1;
    std::optional<conform::FaultKind> fault;
    microarch::CoherenceMode mode = microarch::CoherenceMode::Proxy;

    const std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto value = [&](const char *flag) -> std::string {
            if (++i >= args.size()) {
                std::cerr << "tracegen: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return args[i];
        };
        if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--list") {
            for (const auto &name : litmus::testNames())
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--test") {
            testName = value("--test");
        } else if (arg == "-o" || arg == "--out") {
            outPath = value(arg.c_str());
        } else if (arg == "--seed") {
            if (!parseUint(value("--seed"), &seed)) {
                std::cerr << "tracegen: bad --seed '" << args[i]
                          << "'\n";
                return 2;
            }
        } else if (arg == "--fault-seed") {
            if (!parseUint(value("--fault-seed"), &faultSeed)) {
                std::cerr << "tracegen: bad --fault-seed '" << args[i]
                          << "'\n";
                return 2;
            }
        } else if (arg == "--fault") {
            const std::string kind = value("--fault");
            fault = conform::faultKindFromString(kind);
            if (!fault) {
                std::cerr << "tracegen: unknown fault '" << kind
                          << "' (want drop|reorder|corrupt)\n";
                return 2;
            }
        } else if (arg == "--mode") {
            const std::string name = value("--mode");
            if (name == "proxy") {
                mode = microarch::CoherenceMode::Proxy;
            } else if (name == "coherent") {
                mode = microarch::CoherenceMode::FullyCoherent;
            } else if (name == "fence-reuse") {
                mode = microarch::CoherenceMode::FenceReuse;
            } else {
                std::cerr << "tracegen: unknown mode '" << name
                          << "'\n";
                return 2;
            }
        } else {
            std::cerr << "tracegen: unknown option '" << arg << "'\n"
                      << kUsage;
            return 2;
        }
    }

    if (testName.empty()) {
        std::cerr << "tracegen: --test is required\n" << kUsage;
        return 2;
    }
    if (!litmus::hasTest(testName)) {
        std::cerr << "tracegen: unknown built-in test '" << testName
                  << "' (see --list)\n";
        return 2;
    }

    std::ostringstream trace;
    try {
        microarch::SimOptions opts;
        opts.mode = mode;
        microarch::Simulator(opts).runTraced(
            litmus::testByName(testName), seed, trace);
    } catch (const FatalError &e) {
        std::cerr << "tracegen: " << testName << ": " << e.what()
                  << "\n";
        return 2;
    }

    std::string text = trace.str();
    if (fault) {
        std::optional<std::string> faulted =
            conform::injectFault(text, *fault, faultSeed);
        if (!faulted) {
            std::cerr << "tracegen: " << testName << " seed " << seed
                      << " offers no viable site for fault '"
                      << conform::toString(*fault) << "'\n";
            return 3;
        }
        text = std::move(*faulted);
    }

    if (outPath.empty()) {
        std::cout << text;
        return 0;
    }
    std::ofstream file(outPath);
    if (file)
        file << text;
    file.flush();
    if (!file) {
        std::cerr << "tracegen: cannot write '" << outPath << "'\n";
        return 2;
    }
    return 0;
}
