/**
 * @file
 * perfcmp: compare two stats-JSON bench result files against
 * regression thresholds (docs/observability.md). A thin shim — the
 * whole CLI lives in engine/statsdiff.hh so its exit-code contract is
 * unit-tested.
 */

#include <iostream>
#include <string>
#include <vector>

#include "engine/statsdiff.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return mixedproxy::engine::perfcmpMain(args, std::cout, std::cerr);
}
